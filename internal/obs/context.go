package obs

import "context"

type traceKey struct{}
type spanKey struct{}

// ContextWithTrace attaches a trace to ctx and makes its root the
// current span, so StartSpan calls downstream nest under it.
func ContextWithTrace(ctx context.Context, t *Trace) context.Context {
	ctx = context.WithValue(ctx, traceKey{}, t)
	return context.WithValue(ctx, spanKey{}, t.Root())
}

// TraceFrom returns the trace attached to ctx, or nil (which is safe
// to use everywhere).
func TraceFrom(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}

// ContextWithSpan makes sp the current span of ctx.
func ContextWithSpan(ctx context.Context, sp *Span) context.Context {
	return context.WithValue(ctx, spanKey{}, sp)
}

// SpanFrom returns ctx's current span, or nil.
func SpanFrom(ctx context.Context) *Span {
	sp, _ := ctx.Value(spanKey{}).(*Span)
	return sp
}

// StartSpan starts a child of ctx's current span and returns it with a
// derived context in which it is current. With no trace/span in ctx it
// returns (nil, ctx) — every Span method tolerates the nil.
func StartSpan(ctx context.Context, name string) (*Span, context.Context) {
	parent := SpanFrom(ctx)
	if parent == nil {
		return nil, ctx
	}
	sp := parent.Child(name)
	return sp, ContextWithSpan(ctx, sp)
}
