package obs

import (
	"math"
	"sync/atomic"
	"time"
)

// LatencyHistogram is a fixed-size, log-scale latency histogram built
// for serving hot paths: Observe is lock-free (one atomic add plus a
// max CAS), and Snapshot derives p50/p90/p99/max estimates from the
// bucket counts. Buckets span 1µs to 1000s with latPerDecade buckets
// per decade, so the quantile error is bounded by one bucket's width
// (~58% relative at 5 buckets/decade) — plenty for SLO tracking, and
// exact for max.
//
// Like the rest of obs, a nil *LatencyHistogram is valid everywhere
// and records nothing.
type LatencyHistogram struct {
	counts   [latBuckets]atomic.Int64
	n        atomic.Int64
	sumNanos atomic.Int64
	maxNanos atomic.Int64
}

const (
	// latMinNanos is the upper bound of the underflow bucket: 1µs.
	latMinNanos = 1e3
	// latPerDecade buckets per factor-of-10 of latency.
	latPerDecade = 5
	// latDecades covers 1µs .. 1000s.
	latDecades = 9
	// latBuckets = underflow + log buckets + overflow.
	latBuckets = latDecades*latPerDecade + 2
)

// latBucketIndex maps a duration to its bucket.
func latBucketIndex(d time.Duration) int {
	ns := float64(d.Nanoseconds())
	if ns < latMinNanos {
		return 0
	}
	i := 1 + int(math.Log10(ns/latMinNanos)*latPerDecade)
	if i >= latBuckets {
		return latBuckets - 1
	}
	return i
}

// latUpperNanos is bucket i's upper bound in nanoseconds.
func latUpperNanos(i int) float64 {
	if i <= 0 {
		return latMinNanos
	}
	return latMinNanos * math.Pow(10, float64(i)/latPerDecade)
}

// NewLatencyHistogram builds an empty latency histogram.
func NewLatencyHistogram() *LatencyHistogram { return &LatencyHistogram{} }

// Observe records one latency. Nil-safe and safe for concurrent use.
func (h *LatencyHistogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	h.counts[latBucketIndex(d)].Add(1)
	h.n.Add(1)
	ns := d.Nanoseconds()
	h.sumNanos.Add(ns)
	for {
		cur := h.maxNanos.Load()
		if ns <= cur || h.maxNanos.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *LatencyHistogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.n.Load()
}

// LatencySnapshot is a point-in-time quantile summary.
type LatencySnapshot struct {
	Count int64
	Mean  time.Duration
	P50   time.Duration
	P90   time.Duration
	P99   time.Duration
	Max   time.Duration
}

// Snapshot summarizes the histogram. Concurrent Observe calls may land
// between bucket reads; the summary is a consistent-enough monitoring
// view, not a barrier.
func (h *LatencyHistogram) Snapshot() LatencySnapshot {
	if h == nil {
		return LatencySnapshot{}
	}
	var counts [latBuckets]int64
	var total int64
	for i := range counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	snap := LatencySnapshot{Count: total, Max: time.Duration(h.maxNanos.Load())}
	if total == 0 {
		return snap
	}
	snap.Mean = time.Duration(h.sumNanos.Load() / total)
	quantile := func(q float64) time.Duration {
		target := int64(math.Ceil(q * float64(total)))
		if target < 1 {
			target = 1
		}
		var cum int64
		for i, c := range counts {
			cum += c
			if cum >= target {
				// The overflow bucket has no upper bound — the recorded
				// max is the only honest estimate there.
				if i == latBuckets-1 {
					return snap.Max
				}
				// Elsewhere the bucket upper bound over-estimates;
				// clamping to the recorded max makes single-sample and
				// all-one-bucket tails exact.
				est := time.Duration(latUpperNanos(i))
				if est > snap.Max {
					est = snap.Max
				}
				return est
			}
		}
		return snap.Max
	}
	snap.P50 = quantile(0.50)
	snap.P90 = quantile(0.90)
	snap.P99 = quantile(0.99)
	return snap
}

// sumSeconds backs the Prometheus summary exposition's _sum series.
func (h *LatencyHistogram) sumSeconds() float64 {
	if h == nil {
		return 0
	}
	return float64(h.sumNanos.Load()) / 1e9
}
