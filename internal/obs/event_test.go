package obs

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestEventLogRingWraparound(t *testing.T) {
	l := NewEventLog(4)
	for i := 0; i < 10; i++ {
		l.Record(Event{Kind: "query", ID: fmt.Sprintf("q%d", i)})
	}
	if l.Len() != 4 {
		t.Fatalf("len = %d, want 4", l.Len())
	}
	if l.Seen() != 10 || l.Kept() != 10 {
		t.Fatalf("seen=%d kept=%d", l.Seen(), l.Kept())
	}
	snap := l.Snapshot()
	var ids []string
	for _, ev := range snap {
		ids = append(ids, ev.ID)
	}
	if got := strings.Join(ids, ","); got != "q6,q7,q8,q9" {
		t.Fatalf("ring holds %s, want q6,q7,q8,q9 (oldest first)", got)
	}
}

func TestEventLogSampling(t *testing.T) {
	l := NewEventLog(100)
	l.SetSampleEvery(10)
	for i := 0; i < 40; i++ {
		l.Record(Event{Kind: "query"})
	}
	if got := l.Len(); got != 4 {
		t.Fatalf("sampled len = %d, want 4", got)
	}
	// Forced records bypass sampling — errors and slow queries must
	// never be sampled away.
	l.RecordForced(Event{Kind: "query", Error: "internal"})
	if got := l.Len(); got != 5 {
		t.Fatalf("after forced record len = %d, want 5", got)
	}
}

func TestEventLogNilSafety(t *testing.T) {
	var l *EventLog
	l.Record(Event{})
	l.RecordForced(Event{})
	l.SetSampleEvery(3)
	l.SetSink(bytes.NewBuffer(nil))
	if l.Len() != 0 || l.Snapshot() != nil || l.Seen() != 0 {
		t.Fatal("nil event log not inert")
	}
	var ev *Event
	ev.SetQuery("x")
	ev.SetResults(1)
	ev.SetError("c", "m")
	ev.SetPhase("p", time.Second)
	ev.SetAttempts(2)
	ev.SetHedged()
}

func TestEventLogNDJSONSink(t *testing.T) {
	var buf bytes.Buffer
	l := NewEventLog(2)
	l.SetSink(&buf)
	l.Record(Event{Kind: "query", ID: "a", Results: 3})
	l.Record(Event{Kind: "rpc", Parent: "a", Route: "Worker.MapChunk"})
	sc := bufio.NewScanner(&buf)
	var lines []Event
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		lines = append(lines, ev)
	}
	if len(lines) != 2 || lines[0].ID != "a" || lines[1].Parent != "a" {
		t.Fatalf("sink lines = %+v", lines)
	}

	var out bytes.Buffer
	if err := l.WriteNDJSON(&out); err != nil {
		t.Fatal(err)
	}
	if got := len(strings.Split(strings.TrimSpace(out.String()), "\n")); got != 2 {
		t.Fatalf("WriteNDJSON lines = %d", got)
	}
}

func TestEventLogConcurrent(t *testing.T) {
	l := NewEventLog(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				l.Record(Event{Kind: "query", ID: fmt.Sprintf("g%d-%d", g, i)})
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if n := len(l.Snapshot()); n > 64 {
					t.Errorf("snapshot exceeds capacity: %d", n)
				}
			}
		}()
	}
	wg.Wait()
	if l.Seen() != 4000 || l.Len() != 64 {
		t.Fatalf("seen=%d len=%d", l.Seen(), l.Len())
	}
}

func TestEventLogHandler(t *testing.T) {
	l := NewEventLog(16)
	l.Record(Event{Kind: "query", ID: "q1", Route: "/query", Results: 7})
	l.Record(Event{Kind: "rpc", Parent: "q1", Route: "Worker.ReduceGroup"})
	l.Record(Event{Kind: "query", ID: "q2", Route: "/skyline"})

	get := func(url string) map[string]any {
		t.Helper()
		rec := httptest.NewRecorder()
		l.Handler().ServeHTTP(rec, httptest.NewRequest("GET", url, nil))
		if rec.Code != 200 {
			t.Fatalf("GET %s: %d", url, rec.Code)
		}
		var out map[string]any
		if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
			t.Fatal(err)
		}
		return out
	}

	all := get("/debug/events")
	if n := len(all["events"].([]any)); n != 3 {
		t.Fatalf("all events = %d, want 3", n)
	}
	joined := get("/debug/events?id=q1")
	evs := joined["events"].([]any)
	if len(evs) != 2 {
		t.Fatalf("id=q1 events = %d, want 2 (query + its rpc)", len(evs))
	}
	last := get("/debug/events?n=1")
	evs = last["events"].([]any)
	if len(evs) != 1 || evs[0].(map[string]any)["id"] != "q2" {
		t.Fatalf("n=1 events = %v", evs)
	}
	rpcs := get("/debug/events?kind=rpc")
	if n := len(rpcs["events"].([]any)); n != 1 {
		t.Fatalf("kind=rpc events = %d, want 1", n)
	}
}

func TestEventLogHandlerDatasetFilter(t *testing.T) {
	l := NewEventLog(16)
	l.Record(Event{Kind: "query", ID: "q1", Dataset: "hotels@v3", Cache: "hit"})
	l.Record(Event{Kind: "query", ID: "q2", Dataset: "hotels@v4"})
	l.Record(Event{Kind: "query", ID: "q3", Dataset: "cars@v1"})

	rec := httptest.NewRecorder()
	l.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/events?dataset=hotels", nil))
	var out struct {
		Events []Event `json:"events"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Events) != 2 {
		t.Fatalf("dataset=hotels events = %d, want 2", len(out.Events))
	}
	if out.Events[0].DatasetName() != "hotels" || out.Events[0].Cache != "hit" {
		t.Errorf("event = %+v", out.Events[0])
	}

	// Exact identity (name@version) also matches.
	rec = httptest.NewRecorder()
	l.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/events?dataset=hotels@v4", nil))
	out.Events = nil
	json.Unmarshal(rec.Body.Bytes(), &out)
	if len(out.Events) != 1 || out.Events[0].ID != "q2" {
		t.Fatalf("dataset=hotels@v4 events = %+v", out.Events)
	}
}

func TestRequestIDContext(t *testing.T) {
	ctx := context.Background()
	if RequestIDFrom(ctx) != "" {
		t.Fatal("empty ctx has a request id")
	}
	id := NewRequestID()
	if id == "" || id == NewRequestID() {
		t.Fatal("request ids must be non-empty and unique")
	}
	ctx = ContextWithRequestID(ctx, id)
	if RequestIDFrom(ctx) != id {
		t.Fatal("request id round trip failed")
	}

	ev := &Event{}
	ctx = ContextWithEvent(ctx, ev)
	EventFrom(ctx).SetResults(9)
	if ev.Results != 9 {
		t.Fatal("event round trip failed")
	}
	if EventFrom(context.Background()) != nil {
		t.Fatal("empty ctx has an event")
	}
}
