package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestLatencyHistogramEmpty(t *testing.T) {
	h := NewLatencyHistogram()
	snap := h.Snapshot()
	if snap.Count != 0 || snap.P50 != 0 || snap.P90 != 0 || snap.P99 != 0 || snap.Max != 0 {
		t.Fatalf("empty snapshot = %+v", snap)
	}
	var nilH *LatencyHistogram
	nilH.Observe(time.Second) // must not panic
	if nilH.Count() != 0 || nilH.Snapshot().Count != 0 {
		t.Fatal("nil histogram recorded something")
	}
}

func TestLatencyHistogramSingleSample(t *testing.T) {
	h := NewLatencyHistogram()
	h.Observe(3 * time.Millisecond)
	snap := h.Snapshot()
	if snap.Count != 1 {
		t.Fatalf("count = %d", snap.Count)
	}
	// Clamping the bucket upper bound to the recorded max makes every
	// quantile of a single sample exact.
	for _, q := range []time.Duration{snap.P50, snap.P90, snap.P99, snap.Max} {
		if q != 3*time.Millisecond {
			t.Fatalf("single-sample quantiles = %+v, want all 3ms", snap)
		}
	}
	if snap.Mean != 3*time.Millisecond {
		t.Fatalf("mean = %v", snap.Mean)
	}
}

func TestLatencyHistogramAllOneBucket(t *testing.T) {
	h := NewLatencyHistogram()
	// 1.00ms..1.02ms all land in one log bucket.
	for i := 0; i < 100; i++ {
		h.Observe(time.Millisecond + time.Duration(i)*200*time.Nanosecond)
	}
	snap := h.Snapshot()
	max := time.Millisecond + 99*200*time.Nanosecond
	if snap.Max != max {
		t.Fatalf("max = %v, want %v", snap.Max, max)
	}
	// Every quantile resolves to the single occupied bucket, clamped
	// to max.
	if snap.P50 != max || snap.P99 != max {
		t.Fatalf("one-bucket quantiles = %+v", snap)
	}
}

func TestLatencyHistogramQuantileOrdering(t *testing.T) {
	h := NewLatencyHistogram()
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * 100 * time.Microsecond) // 0.1ms .. 100ms
	}
	snap := h.Snapshot()
	if snap.Count != 1000 {
		t.Fatalf("count = %d", snap.Count)
	}
	if !(snap.P50 <= snap.P90 && snap.P90 <= snap.P99 && snap.P99 <= snap.Max) {
		t.Fatalf("quantiles out of order: %+v", snap)
	}
	// The true p50 is 50ms; the log buckets bound the estimate within
	// one bucket ratio (10^(1/5) ≈ 1.585) above, never below p50's
	// bucket lower bound.
	if snap.P50 < 40*time.Millisecond || snap.P50 > 80*time.Millisecond {
		t.Fatalf("p50 = %v, want ~50ms within a bucket", snap.P50)
	}
	if snap.Max != 100*time.Millisecond {
		t.Fatalf("max = %v", snap.Max)
	}
}

func TestLatencyHistogramExtremes(t *testing.T) {
	h := NewLatencyHistogram()
	h.Observe(-time.Second) // clamped to 0 → underflow bucket
	h.Observe(0)
	h.Observe(5 * time.Hour) // beyond the last decade → overflow bucket
	snap := h.Snapshot()
	if snap.Count != 3 {
		t.Fatalf("count = %d", snap.Count)
	}
	if snap.Max != 5*time.Hour {
		t.Fatalf("max = %v", snap.Max)
	}
	if snap.P99 != 5*time.Hour {
		t.Fatalf("p99 = %v, want clamp to max", snap.P99)
	}
}

// TestLatencyHistogramConcurrent hammers Observe from many goroutines
// while snapshots and Prometheus exports run — the -race coverage the
// serving path needs.
func TestLatencyHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Latency("zsky_query_seconds", L("route", "/query"))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				h.Observe(time.Duration(g*1000+i) * time.Microsecond)
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				snap := h.Snapshot()
				if snap.Count < 0 {
					t.Error("negative count")
				}
				var b strings.Builder
				if err := r.WritePrometheus(&b); err != nil {
					t.Error(err)
				}
			}
		}()
	}
	wg.Wait()
	if got := h.Count(); got != 16000 {
		t.Fatalf("count = %d, want 16000", got)
	}
	snap := h.Snapshot()
	if snap.P50 <= 0 || snap.Max < snap.P99 {
		t.Fatalf("snapshot = %+v", snap)
	}
}

func TestLatencySummaryExposition(t *testing.T) {
	r := NewRegistry()
	r.Latency("zsky_query_seconds", L("route", "/q")).Observe(10 * time.Millisecond)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE zsky_query_seconds summary",
		`zsky_query_seconds{route="/q",quantile="0.5"} 0.01`,
		`zsky_query_seconds{route="/q",quantile="0.99"} 0.01`,
		`zsky_query_seconds_sum{route="/q"} 0.01`,
		`zsky_query_seconds_count{route="/q"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestLatencyReportLine(t *testing.T) {
	r := NewRegistry()
	r.Latency("lat").Observe(2 * time.Millisecond)
	rep := Report(nil, r)
	if !strings.Contains(rep, "count=1") || !strings.Contains(rep, "p50=2ms") {
		t.Fatalf("report missing latency line:\n%s", rep)
	}
}
