package obs

import (
	"context"
	cryptorand "crypto/rand"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Event is one structured observability record: a served query (HTTP
// request or coordinator run) or one RPC issued on a query's behalf.
// RPC events carry the owning query's ID in Parent, so a query and
// every wire call it caused join on one key. All fields are plain JSON
// so events survive NDJSON sinks and the /debug/events endpoint
// unchanged.
type Event struct {
	Time time.Time `json:"time"`
	// ID is the request/query ID (also returned in X-Request-Id).
	ID string `json:"id,omitempty"`
	// Parent is the owning query's ID on "rpc" events.
	Parent string `json:"parent,omitempty"`
	// Kind is "query" or "rpc".
	Kind string `json:"kind"`
	// Route is the HTTP route or RPC method.
	Route string `json:"route,omitempty"`
	// Query is the query shape (preference list, k, subspace, ...).
	Query string `json:"query,omitempty"`
	// Dominance is the dominance descriptor in text form.
	Dominance string `json:"dominance,omitempty"`
	// Dataset identifies the dataset (and its version, as
	// "name@vN") the query ran against.
	Dataset string `json:"dataset,omitempty"`
	// Cache is "hit" or "miss" on routes served through the result
	// cache; empty elsewhere.
	Cache string `json:"cache,omitempty"`
	// Status is the HTTP status code (query events from the server).
	Status int `json:"status,omitempty"`
	// Error is the error class ("bad-request", "internal", "retryable",
	// "fatal", ...); empty on success.
	Error string `json:"error,omitempty"`
	// Message carries the error text when Error is set.
	Message string `json:"message,omitempty"`

	DurationMS float64 `json:"duration_ms"`
	// Phases maps phase-span names to wall milliseconds.
	Phases map[string]float64 `json:"phases,omitempty"`

	// RPC-side detail: serving worker, attempt count (>1 after
	// retries/failover), whether a hedge leg was launched.
	Worker   string `json:"worker,omitempty"`
	Attempts int    `json:"attempts,omitempty"`
	Hedged   bool   `json:"hedged,omitempty"`

	WireSentBytes int64 `json:"wire_sent_bytes,omitempty"`
	WireRecvBytes int64 `json:"wire_recv_bytes,omitempty"`
	// Results is the result size (skyline/query rows returned).
	Results int `json:"results,omitempty"`
	// Trace holds a rendered trace report, promoted onto the event when
	// the query crossed the slow threshold.
	Trace string `json:"trace,omitempty"`
}

// SetQuery records the query shape. Nil-safe, like span setters.
func (e *Event) SetQuery(shape string) {
	if e != nil {
		e.Query = shape
	}
}

// SetResults records the result size. Nil-safe.
func (e *Event) SetResults(n int) {
	if e != nil {
		e.Results = n
	}
}

// SetError records an error class and message. Nil-safe.
func (e *Event) SetError(class, msg string) {
	if e != nil {
		e.Error = class
		e.Message = msg
	}
}

// SetCache records whether the result cache served the query. Nil-safe.
func (e *Event) SetCache(outcome string) {
	if e != nil {
		e.Cache = outcome
	}
}

// SetDataset records the dataset identity ("name@vN"). Nil-safe.
func (e *Event) SetDataset(ds string) {
	if e != nil {
		e.Dataset = ds
	}
}

// DatasetName returns the name part of the event's dataset identity,
// stripping the "@vN" version suffix.
func (e *Event) DatasetName() string {
	if e == nil {
		return ""
	}
	if i := strings.IndexByte(e.Dataset, '@'); i >= 0 {
		return e.Dataset[:i]
	}
	return e.Dataset
}

// SetPhase records one phase's wall clock. Nil-safe.
func (e *Event) SetPhase(name string, d time.Duration) {
	if e == nil {
		return
	}
	if e.Phases == nil {
		e.Phases = map[string]float64{}
	}
	e.Phases[name] = float64(d.Microseconds()) / 1000
}

// SetAttempts records the attempt count. Nil-safe.
func (e *Event) SetAttempts(n int) {
	if e != nil {
		e.Attempts = n
	}
}

// SetHedged marks that a hedge leg was launched. Nil-safe.
func (e *Event) SetHedged() {
	if e != nil {
		e.Hedged = true
	}
}

// SetWire records the exact on-wire request and response frame sizes
// of the serving attempt. Nil-safe.
func (e *Event) SetWire(sent, recv int64) {
	if e != nil {
		e.WireSentBytes = sent
		e.WireRecvBytes = recv
	}
}

// EventLog is a bounded, concurrency-safe ring of Events with optional
// 1-in-N sampling and an optional NDJSON sink. The ring keeps the most
// recent records for /debug/events; the sink, when set, receives every
// recorded event as one JSON line. A nil *EventLog is valid everywhere
// and records nothing.
type EventLog struct {
	mu    sync.Mutex
	buf   []Event
	next  int    // next write position
	size  int    // occupied entries, <= len(buf)
	seen  uint64 // events offered to Record (pre-sampling)
	kept  uint64 // events actually recorded
	every int    // keep 1 in every; <=1 keeps all
	sink  io.Writer
}

// DefaultEventLogSize is the ring capacity NewEventLog(0) selects.
const DefaultEventLogSize = 1024

// NewEventLog builds a ring holding the last capacity events
// (DefaultEventLogSize when capacity <= 0).
func NewEventLog(capacity int) *EventLog {
	if capacity <= 0 {
		capacity = DefaultEventLogSize
	}
	return &EventLog{buf: make([]Event, capacity), every: 1}
}

// SetSampleEvery keeps one in every n events offered to Record
// (RecordForced always records). n <= 1 keeps everything. Nil-safe.
func (l *EventLog) SetSampleEvery(n int) {
	if l == nil {
		return
	}
	l.mu.Lock()
	if n < 1 {
		n = 1
	}
	l.every = n
	l.mu.Unlock()
}

// SetSink streams every recorded event to w as NDJSON (one JSON object
// per line), in record order, serialized under the log's lock.
// Nil-safe.
func (l *EventLog) SetSink(w io.Writer) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.sink = w
	l.mu.Unlock()
}

// Record offers one event, subject to sampling. A zero Time is stamped
// now. Nil-safe.
func (l *EventLog) Record(ev Event) { l.record(ev, false) }

// RecordForced records one event regardless of the sampling rate — for
// errors and slow queries, which must never be sampled away. Nil-safe.
func (l *EventLog) RecordForced(ev Event) { l.record(ev, true) }

func (l *EventLog) record(ev Event, forced bool) {
	if l == nil {
		return
	}
	if ev.Time.IsZero() {
		ev.Time = time.Now()
	}
	l.mu.Lock()
	l.seen++
	if !forced && l.every > 1 && l.seen%uint64(l.every) != 0 {
		l.mu.Unlock()
		return
	}
	l.kept++
	l.buf[l.next] = ev
	l.next = (l.next + 1) % len(l.buf)
	if l.size < len(l.buf) {
		l.size++
	}
	sink := l.sink
	if sink != nil {
		// Encode inside the lock so sink lines never interleave.
		if blob, err := json.Marshal(ev); err == nil {
			sink.Write(append(blob, '\n'))
		}
	}
	l.mu.Unlock()
}

// Len returns the number of events currently held.
func (l *EventLog) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

// Seen returns how many events were offered; Kept how many were
// recorded (post-sampling, including forced records).
func (l *EventLog) Seen() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seen
}

// Kept returns the number of events recorded into the ring.
func (l *EventLog) Kept() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.kept
}

// Snapshot copies the held events, oldest first.
func (l *EventLog) Snapshot() []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, 0, l.size)
	start := l.next - l.size
	for i := 0; i < l.size; i++ {
		out = append(out, l.buf[(start+i+len(l.buf))%len(l.buf)])
	}
	return out
}

// WriteNDJSON writes the held events to w, one JSON object per line,
// oldest first.
func (l *EventLog) WriteNDJSON(w io.Writer) error {
	for _, ev := range l.Snapshot() {
		blob, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		if _, err := w.Write(append(blob, '\n')); err != nil {
			return err
		}
	}
	return nil
}

// Handler serves the event log as JSON — mount it at GET /debug/events.
// Query parameters: ?n=K returns only the most recent K events; ?id=X
// returns events whose ID or Parent equals X (the per-query join);
// ?kind=query|rpc filters by kind; ?dataset=name filters by dataset
// (matching either the exact identity or its name part, so "hotels"
// finds "hotels@v3").
func (l *EventLog) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		events := l.Snapshot()
		if id := r.URL.Query().Get("id"); id != "" {
			filtered := events[:0]
			for _, ev := range events {
				if ev.ID == id || ev.Parent == id {
					filtered = append(filtered, ev)
				}
			}
			events = filtered
		}
		if kind := r.URL.Query().Get("kind"); kind != "" {
			filtered := events[:0]
			for _, ev := range events {
				if ev.Kind == kind {
					filtered = append(filtered, ev)
				}
			}
			events = filtered
		}
		if ds := r.URL.Query().Get("dataset"); ds != "" {
			filtered := events[:0]
			for _, ev := range events {
				if ev.Dataset == ds || ev.DatasetName() == ds {
					filtered = append(filtered, ev)
				}
			}
			events = filtered
		}
		if ns := r.URL.Query().Get("n"); ns != "" {
			if n, err := strconv.Atoi(ns); err == nil && n >= 0 && n < len(events) {
				events = events[len(events)-n:]
			}
		}
		if events == nil {
			events = []Event{}
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{
			"seen":   l.Seen(),
			"kept":   l.Kept(),
			"events": events,
		})
	})
}

// ---- request IDs ----

// reqSalt makes request IDs unique across processes; reqCounter across
// requests in this one.
var (
	reqSalt    = func() uint64 { var b [8]byte; cryptorand.Read(b[:]); return binary.LittleEndian.Uint64(b[:]) }()
	reqCounter atomic.Uint64
)

// NewRequestID returns a short, process-unique request ID.
func NewRequestID() string {
	return fmt.Sprintf("%08x%06x", uint32(reqSalt), reqCounter.Add(1)&0xffffff)
}

type requestIDKey struct{}

// ContextWithRequestID attaches a request/query ID to ctx; downstream
// layers (plan spans, dist RPC events) pick it up to join their
// records to the owning query.
func ContextWithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey{}, id)
}

// RequestIDFrom returns ctx's request ID, or "".
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

type eventKey struct{}

// ContextWithEvent attaches a mutable per-query Event to ctx so
// handlers deeper in the call chain can annotate it (query shape,
// result size, phases) through the nil-safe setters.
func ContextWithEvent(ctx context.Context, ev *Event) context.Context {
	return context.WithValue(ctx, eventKey{}, ev)
}

// EventFrom returns ctx's current event, or nil (safe to use: every
// Event setter tolerates nil).
func EventFrom(ctx context.Context) *Event {
	ev, _ := ctx.Value(eventKey{}).(*Event)
	return ev
}
