// Package obs is the engine's observability layer: named, nested
// phase spans (a lightweight tracer), a counter/gauge/histogram
// registry, and two exporters — a human-readable per-run trace report
// and Prometheus text exposition. All three execution substrates
// (core's MapReduce simulator, dist's TCP coordinator/workers, and the
// shared-memory pool) emit the same span taxonomy
//
//	learn  ->  map  ->  local-skyline  ->  merge/round-N
//
// so a figure-style experiment is reproducible from one trace artifact
// regardless of where it ran.
//
// Everything here follows metrics.Tally's nil-safety convention: a nil
// *Trace, *Span, or *Registry is valid everywhere and records nothing,
// so instrumented hot paths stay branch-cheap when tracing is off.
package obs

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string
	Value string
}

// Span is one named, timed region of a run. Spans nest: children are
// created with Child (started now) or ChildAt (reconstructed from a
// measured start/duration, e.g. the simulator's phase walls). A Span
// is safe for concurrent use — parallel tasks may attach children and
// attributes to the same parent.
type Span struct {
	name  string
	start time.Time

	mu       sync.Mutex
	dur      time.Duration
	ended    bool
	attrs    []Attr
	children []*Span
}

// Name returns the span's name.
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Start returns when the span began.
func (s *Span) Start() time.Time {
	if s == nil {
		return time.Time{}
	}
	return s.start
}

// Duration returns the span's recorded duration (elapsed-so-far if the
// span has not ended).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.ended {
		return time.Since(s.start)
	}
	return s.dur
}

// End closes the span, fixing its duration. Ending twice is a no-op.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.ended = true
		s.dur = time.Since(s.start)
	}
	s.mu.Unlock()
}

// SetAttr annotates the span. Values are rendered with %v; durations
// are rounded for readability.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	var v string
	switch x := value.(type) {
	case time.Duration:
		v = x.Round(time.Microsecond).String()
	case string:
		v = x
	default:
		v = fmt.Sprintf("%v", value)
	}
	s.mu.Lock()
	for i := range s.attrs {
		if s.attrs[i].Key == key {
			s.attrs[i].Value = v
			s.mu.Unlock()
			return
		}
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: v})
	s.mu.Unlock()
}

// Attrs returns a copy of the span's attributes in set order.
func (s *Span) Attrs() []Attr {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Attr(nil), s.attrs...)
}

// Child starts a nested span now.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{name: name, start: time.Now()}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// ChildAt attaches an already-measured child span — how substrates
// that only learn phase timings after the fact (the MapReduce
// simulator's job stats) still contribute exact spans. The child is
// returned ended; attributes may still be set on it.
func (s *Span) ChildAt(name string, start time.Time, dur time.Duration) *Span {
	if s == nil {
		return nil
	}
	c := &Span{name: name, start: start, dur: dur, ended: true}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// Children returns a copy of the span's children ordered by start
// time, so reports read chronologically even when parallel tasks
// appended out of order.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	out := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].start.Before(out[j].start) })
	return out
}

// Trace is one run's span tree. The root span covers the whole run;
// phases hang off it.
type Trace struct {
	root *Span
}

// NewTrace starts a trace whose root span begins now.
func NewTrace(name string) *Trace {
	return &Trace{root: &Span{name: name, start: time.Now()}}
}

// Root returns the trace's root span (nil for a nil trace).
func (t *Trace) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}

// Finish ends the root span.
func (t *Trace) Finish() { t.Root().End() }
