// Package histo provides the small histogram toolkit the analysis
// experiments use: equi-width and equi-depth 1-D histograms (the same
// constructions the paper's §4 uses to study skyline distribution
// across partitions, Figures 3-4).
package histo

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Histogram is a 1-D histogram over float values.
type Histogram struct {
	// Bounds has len(Counts)+1 entries; bucket i covers
	// [Bounds[i], Bounds[i+1]) with the last bucket closed.
	Bounds []float64
	Counts []int
}

// EquiWidth builds a histogram with buckets of equal value range.
func EquiWidth(values []float64, buckets int) (*Histogram, error) {
	if buckets < 1 {
		return nil, fmt.Errorf("histo: need at least one bucket")
	}
	if len(values) == 0 {
		return nil, fmt.Errorf("histo: no values")
	}
	lo, hi := values[0], values[0]
	for _, v := range values {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	h := &Histogram{Bounds: make([]float64, buckets+1), Counts: make([]int, buckets)}
	span := hi - lo
	for i := 0; i <= buckets; i++ {
		h.Bounds[i] = lo + span*float64(i)/float64(buckets)
	}
	for _, v := range values {
		i := buckets - 1
		if span > 0 {
			i = int((v - lo) / span * float64(buckets))
			if i >= buckets {
				i = buckets - 1
			}
		}
		h.Counts[i]++
	}
	return h, nil
}

// EquiDepth builds a histogram whose buckets hold (approximately)
// equal counts; bucket boundaries are the value quantiles. This is the
// construction behind the Z-curve's equal-frequency pivots.
func EquiDepth(values []float64, buckets int) (*Histogram, error) {
	if buckets < 1 {
		return nil, fmt.Errorf("histo: need at least one bucket")
	}
	if len(values) == 0 {
		return nil, fmt.Errorf("histo: no values")
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	h := &Histogram{Bounds: make([]float64, buckets+1), Counts: make([]int, buckets)}
	h.Bounds[0] = sorted[0]
	h.Bounds[buckets] = sorted[len(sorted)-1]
	for i := 1; i < buckets; i++ {
		h.Bounds[i] = sorted[i*len(sorted)/buckets]
	}
	// Count by boundary search so duplicate-heavy data still sums
	// correctly (buckets may be unevenly filled when values repeat).
	for _, v := range values {
		i := sort.SearchFloat64s(h.Bounds[1:buckets], v+math.SmallestNonzeroFloat64)
		h.Counts[i]++
	}
	return h, nil
}

// Total returns the number of recorded values.
func (h *Histogram) Total() int {
	t := 0
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// MaxCount returns the largest bucket count.
func (h *Histogram) MaxCount() int {
	m := 0
	for _, c := range h.Counts {
		if c > m {
			m = c
		}
	}
	return m
}

// Render draws the histogram as ASCII bars of at most width cells.
func (h *Histogram) Render(width int) string {
	if width < 1 {
		width = 40
	}
	max := h.MaxCount()
	var b strings.Builder
	for i, c := range h.Counts {
		bar := 0
		if max > 0 {
			bar = c * width / max
		}
		fmt.Fprintf(&b, "[%10.4g, %10.4g) %6d %s\n",
			h.Bounds[i], h.Bounds[i+1], c, strings.Repeat("#", bar))
	}
	return b.String()
}
