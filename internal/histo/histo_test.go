package histo

import (
	"math/rand"
	"strings"
	"testing"
)

func TestEquiWidthBasics(t *testing.T) {
	h, err := EquiWidth([]float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if h.Total() != 10 {
		t.Errorf("total = %d", h.Total())
	}
	for i, c := range h.Counts {
		if c != 2 {
			t.Errorf("bucket %d = %d, want 2", i, c)
		}
	}
	if _, err := EquiWidth(nil, 4); err == nil {
		t.Error("empty values accepted")
	}
	if _, err := EquiWidth([]float64{1}, 0); err == nil {
		t.Error("zero buckets accepted")
	}
}

func TestEquiWidthConstantValues(t *testing.T) {
	h, err := EquiWidth([]float64{5, 5, 5}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if h.Total() != 3 {
		t.Errorf("total = %d", h.Total())
	}
}

func TestEquiDepthBalances(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// Heavily skewed data: equi-depth should still balance counts.
	values := make([]float64, 10000)
	for i := range values {
		v := rng.NormFloat64() * rng.NormFloat64()
		values[i] = v * v
	}
	h, err := EquiDepth(values, 8)
	if err != nil {
		t.Fatal(err)
	}
	if h.Total() != len(values) {
		t.Fatalf("total = %d", h.Total())
	}
	for i, c := range h.Counts {
		if c < len(values)/16 || c > len(values)/4 {
			t.Errorf("equi-depth bucket %d badly unbalanced: %d", i, c)
		}
	}
	// Equi-width on the same data should be far more skewed.
	w, _ := EquiWidth(values, 8)
	if w.MaxCount() <= h.MaxCount() {
		t.Errorf("equi-width max %d should exceed equi-depth max %d on skewed data",
			w.MaxCount(), h.MaxCount())
	}
}

func TestEquiDepthDuplicateHeavy(t *testing.T) {
	values := make([]float64, 100)
	for i := range values {
		values[i] = float64(i % 2)
	}
	h, err := EquiDepth(values, 4)
	if err != nil {
		t.Fatal(err)
	}
	if h.Total() != 100 {
		t.Fatalf("total = %d", h.Total())
	}
}

func TestRender(t *testing.T) {
	h, _ := EquiWidth([]float64{1, 2, 3, 4}, 2)
	out := h.Render(10)
	if !strings.Contains(out, "#") || len(strings.Split(strings.TrimSpace(out), "\n")) != 2 {
		t.Errorf("render: %q", out)
	}
	h.Render(0) // default width must not panic
}
