package rank

import (
	"math/rand"
	"testing"

	"zskyline/internal/gen"
	"zskyline/internal/point"
	"zskyline/internal/seq"
	"zskyline/internal/zorder"
)

func TestTopKByScore(t *testing.T) {
	pts := []point.Point{{3, 3}, {1, 5}, {5, 1}, {2, 2}}
	score, err := WeightedSum([]float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	top := TopKByScore(pts, 2, score)
	if len(top) != 2 || !top[0].P.Equal(point.Point{2, 2}) {
		t.Fatalf("top = %+v", top)
	}
	if top[0].Score != 4 {
		t.Errorf("score = %v", top[0].Score)
	}
	if got := TopKByScore(pts, 0, score); got != nil {
		t.Error("k=0 should return nil")
	}
	if got := TopKByScore(pts, 99, score); len(got) != 4 {
		t.Errorf("k>n returned %d", len(got))
	}
	if got := TopKByScore(nil, 3, score); got != nil {
		t.Error("empty input should return nil")
	}
}

func TestTopKDeterministicTies(t *testing.T) {
	pts := []point.Point{{2, 0}, {0, 2}, {1, 1}}
	score, _ := WeightedSum([]float64{1, 1})
	a := TopKByScore(pts, 3, score)
	b := TopKByScore([]point.Point{{1, 1}, {0, 2}, {2, 0}}, 3, score)
	for i := range a {
		if !a[i].P.Equal(b[i].P) {
			t.Fatalf("tie order not deterministic: %v vs %v", a[i].P, b[i].P)
		}
	}
}

func TestWeightedSumValidation(t *testing.T) {
	if _, err := WeightedSum([]float64{1, -1}); err == nil {
		t.Error("negative weight accepted")
	}
}

// Monotone scorer: the global best by score must be a skyline point.
func TestMonotoneScorerBestIsSkyline(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		ds := gen.Synthetic(gen.Independent, 300, 3, rng.Int63())
		w := []float64{rng.Float64() + 0.1, rng.Float64() + 0.1, rng.Float64() + 0.1}
		score, _ := WeightedSum(w)
		best := TopKByScore(ds.Points, 1, score)[0]
		sky := seq.BruteForce(ds.Points)
		found := false
		for _, s := range sky {
			if s.Equal(best.P) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("best scored point %v not in skyline", best.P)
		}
	}
}

func TestTopKByDominanceMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 15; trial++ {
		d := 2 + rng.Intn(3)
		ds := gen.Synthetic(gen.Independent, 400, d, rng.Int63())
		sky := seq.BruteForce(ds.Points)
		enc, _ := zorder.NewUnitEncoder(d, 10)
		got := TopKByDominance(sky, ds.Points, enc, len(sky), nil)
		if len(got) != len(sky) {
			t.Fatalf("got %d ranked, want %d", len(got), len(sky))
		}
		for _, s := range got {
			want := 0
			for _, q := range ds.Points {
				if point.Dominates(s.P, q) {
					want++
				}
			}
			if int(s.Score) != want {
				t.Fatalf("dominance count for %v = %v, want %d", s.P, s.Score, want)
			}
		}
		// Descending order.
		for i := 1; i < len(got); i++ {
			if got[i].Score > got[i-1].Score {
				t.Fatal("not sorted descending")
			}
		}
	}
}

func TestTopKByDominanceEdges(t *testing.T) {
	enc, _ := zorder.NewUnitEncoder(2, 8)
	if got := TopKByDominance(nil, nil, enc, 5, nil); got != nil {
		t.Error("empty skyline should return nil")
	}
	sky := []point.Point{{0.1, 0.1}}
	if got := TopKByDominance(sky, nil, enc, 1, nil); len(got) != 1 || got[0].Score != 0 {
		t.Errorf("empty data: %+v", got)
	}
}
