// Package rank orders skyline results for presentation. The paper
// (§1) notes that when skylines are huge, "users could rank the
// computed skyline sets based on user defined functions such as in
// [15]" and leaves ranking out of scope; this package supplies the two
// standard mechanisms downstream users expect:
//
//   - TopKByScore: rank by any user scoring function (monotone scorers
//     keep the guarantee that the best point overall is a skyline
//     point, so ranking the skyline loses nothing);
//   - TopKByDominance: rank skyline points by how many dataset points
//     each dominates — a preference-free measure of "how much of the
//     data this point beats" — computed with ZB-tree pruning rather
//     than all-pairs tests.
package rank

import (
	"fmt"
	"sort"

	"zskyline/internal/metrics"
	"zskyline/internal/point"
	"zskyline/internal/zbtree"
	"zskyline/internal/zorder"
)

// Scored pairs a point with its score for ranked output.
type Scored struct {
	P     point.Point
	Score float64
}

// TopKByScore returns the k lowest-scoring points (smaller is better,
// consistent with the library's convention). Ties are broken by
// lexicographic point order so results are deterministic. k <= 0
// returns nil; k beyond len(pts) returns everything ranked.
func TopKByScore(pts []point.Point, k int, score func(point.Point) float64) []Scored {
	if k <= 0 || len(pts) == 0 {
		return nil
	}
	scored := make([]Scored, len(pts))
	for i, p := range pts {
		scored[i] = Scored{P: p, Score: score(p)}
	}
	sort.Slice(scored, func(i, j int) bool {
		if scored[i].Score != scored[j].Score {
			return scored[i].Score < scored[j].Score
		}
		return point.Less(scored[i].P, scored[j].P)
	})
	if k > len(scored) {
		k = len(scored)
	}
	return scored[:k]
}

// WeightedSum builds a linear scoring function over normalized weights
// (weights need not sum to one; negative weights are rejected because
// they break monotonicity, and with it the skyline-contains-the-best
// guarantee).
func WeightedSum(weights []float64) (func(point.Point) float64, error) {
	for i, w := range weights {
		if w < 0 {
			return nil, fmt.Errorf("rank: negative weight %v at %d", w, i)
		}
	}
	ws := append([]float64(nil), weights...)
	return func(p point.Point) float64 {
		s := 0.0
		for i, v := range p {
			if i < len(ws) {
				s += ws[i] * v
			}
		}
		return s
	}, nil
}

// TopKByDominance ranks the points of sky by the number of points of
// data each strictly dominates, descending (the most "influential"
// skyline points first). The count uses a ZB-tree over data with
// conservative region pruning: a whole subtree counts at once when its
// region is certifiably dominated. Cost is O(|sky| * tree), far below
// the all-pairs |sky|*|data| for clustered data.
func TopKByDominance(sky, data []point.Point, enc *zorder.Encoder, k int, tally *metrics.Tally) []Scored {
	if k <= 0 || len(sky) == 0 {
		return nil
	}
	tree := zbtree.BuildFromPoints(enc, 0, data, tally)
	scored := make([]Scored, len(sky))
	for i, p := range sky {
		e := zbtree.NewEntry(enc, p)
		scored[i] = Scored{P: p, Score: float64(tree.CountDominatedBy(e.G, e.P))}
	}
	sort.Slice(scored, func(i, j int) bool {
		if scored[i].Score != scored[j].Score {
			return scored[i].Score > scored[j].Score
		}
		return point.Less(scored[i].P, scored[j].P)
	})
	if k > len(scored) {
		k = len(scored)
	}
	return scored[:k]
}
