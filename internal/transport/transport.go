// Package transport is the dist tier's wire protocol: a minimal
// length-prefixed binary frame over TCP, replacing net/rpc+gob.
//
// The data plane of a distributed skyline query is already binary —
// point.Block and zorder.ZCol marshal to flat little-endian frames —
// so re-encoding those bytes through reflective gob on every RPC only
// inflates the communication cost the distributed-skyline literature
// identifies as the dominant term (Zhang & Zhang, "Computing Skylines
// on Distributed Data"). Here a call is one frame each way:
//
//	offset size field
//	0      4    magic   0x5A465231 ("ZFR1"), little-endian
//	4      2    method  numeric method id (the caller's registry)
//	6      1    flags   bit0 = error response (payload is the message)
//	7      1    reserved, must be zero
//	8      8    sequence, echoed by the response
//	16     4    payload length
//	20     …    payload  the method's binary frame
//
// Payload encoding is the caller's business: dist's wire types append
// their existing Block/ZCol frames directly (see internal/dist
// protocol encoders), with gob surviving only for the few small
// control structs where reflection cost is irrelevant.
//
// Client owns one TCP connection, multiplexes concurrent calls by
// sequence number, honours per-call contexts, and reports the exact
// on-wire size of each request and response — so RPC byte metrics come
// from the frame header rather than payload estimates. ServeConn is
// the server side: one goroutine per in-flight call, responses
// serialized on the write side, with an optional Interceptor that can
// delay, drop, or sever individual calls (fault injection lives at
// this seam, where the method id and the raw connection meet).
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
)

const (
	// Magic opens every frame. A connection that presents anything else
	// is not speaking this protocol (a gob worker, say) and is closed:
	// framed and gob endpoints are not mix-and-match.
	Magic uint32 = 0x5A465231 // "ZFR1"

	// HeaderLen is the fixed frame header size in bytes.
	HeaderLen = 20

	// DefaultMaxPayload bounds a frame's payload length. A header
	// announcing more than this is a protocol violation (corrupt or
	// hostile peer), not a large message, and kills the connection.
	DefaultMaxPayload = 1 << 30
)

// Flags is the frame header's flag byte.
type Flags uint8

const (
	// FlagError marks a response whose payload is an error message
	// rather than a reply frame — the worker executed (or rejected) the
	// call and this is its verdict, distinct from transport failures.
	FlagError Flags = 1 << 0
)

// Header is a decoded frame header.
type Header struct {
	Method uint16
	Flags  Flags
	Seq    uint64
	Len    uint32
}

// AppendTo appends the header's wire form to dst.
func (h Header) AppendTo(dst []byte) []byte {
	var b [HeaderLen]byte
	binary.LittleEndian.PutUint32(b[0:4], Magic)
	binary.LittleEndian.PutUint16(b[4:6], h.Method)
	b[6] = byte(h.Flags)
	b[7] = 0
	binary.LittleEndian.PutUint64(b[8:16], h.Seq)
	binary.LittleEndian.PutUint32(b[16:20], h.Len)
	return append(dst, b[:]...)
}

// DecodeHeader parses one frame header, validating magic and the
// reserved byte. maxPayload guards the announced length; pass 0 for
// DefaultMaxPayload.
func DecodeHeader(b []byte, maxPayload uint32) (Header, error) {
	var h Header
	if len(b) < HeaderLen {
		return h, fmt.Errorf("transport: short header: %d bytes", len(b))
	}
	if m := binary.LittleEndian.Uint32(b[0:4]); m != Magic {
		return h, fmt.Errorf("transport: bad magic %#08x (framed and gob endpoints don't mix)", m)
	}
	if b[7] != 0 {
		return h, fmt.Errorf("transport: reserved header byte = %#02x", b[7])
	}
	h.Method = binary.LittleEndian.Uint16(b[4:6])
	h.Flags = Flags(b[6])
	h.Seq = binary.LittleEndian.Uint64(b[8:16])
	h.Len = binary.LittleEndian.Uint32(b[16:20])
	if maxPayload == 0 {
		maxPayload = DefaultMaxPayload
	}
	if h.Len > maxPayload {
		return h, fmt.Errorf("transport: payload length %d exceeds cap %d", h.Len, maxPayload)
	}
	return h, nil
}

// Marshaler is a request or reply that can append its payload frame.
type Marshaler interface {
	AppendTo(dst []byte) ([]byte, error)
}

// Unmarshaler is a request or reply that can decode its payload frame.
// Implementations must copy what they keep: the buffer is reused.
type Unmarshaler interface {
	DecodeFrom(data []byte) error
}

// ServerError is a worker-side verdict carried in a FlagError
// response: the call reached the worker and the worker answered with
// an error. It is the framed analogue of rpc.ServerError, and the
// retry layer's classifier keys on the distinction — a ServerError
// means the bytes arrived, everything else means they may not have.
type ServerError string

// Error returns the worker's message.
func (e ServerError) Error() string { return string(e) }

// ErrShutdown is returned by calls issued on (or in flight over) a
// closed client connection. Retryable: the request may never have
// reached the worker.
var ErrShutdown = errors.New("transport: connection is shut down")

// scratch is the shared marshal arena: frame buffers are pooled across
// calls and connections so steady-state request/response encoding
// allocates nothing beyond what payload growth demands.
var scratch = sync.Pool{New: func() any { b := make([]byte, 0, 4096); return &b }}

func getScratch() *[]byte  { return scratch.Get().(*[]byte) }
func putScratch(b *[]byte) { *b = (*b)[:0]; scratch.Put(b) }
