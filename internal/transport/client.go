package transport

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
)

// Call is one in-flight (or finished) request. It mirrors rpc.Call so
// callers can keep the Go-then-select idiom their deadline and hedging
// logic is built on.
type Call struct {
	Method uint16
	Args   Marshaler
	Reply  Unmarshaler
	// Err is the call's outcome: nil, a ServerError (worker verdict),
	// or a transport failure.
	Err error
	// ReqBytes and RespBytes are the exact on-wire frame sizes
	// (header + payload). RespBytes is zero until a response lands.
	ReqBytes  int64
	RespBytes int64
	// Done receives the call itself when it completes.
	Done chan *Call

	seq uint64
}

func (c *Call) finish(err error) {
	c.Err = err
	select {
	case c.Done <- c:
	default:
		// Done is under-buffered; drop rather than block the read loop
		// (same contract as net/rpc).
	}
}

// Client owns one connection to a framed server and multiplexes
// concurrent calls over it by sequence number. It is safe for
// concurrent use. A read or write failure shuts the client down and
// fails every pending call with ErrShutdown — callers' retry policy
// decides what happens next.
type Client struct {
	conn net.Conn

	wmu sync.Mutex // serializes frame writes; guards wbuf
	wbf *[]byte

	mu       sync.Mutex
	seq      uint64
	pending  map[uint64]*Call
	shutdown bool

	readDone chan struct{}
}

// NewClient runs the framed protocol over conn, which it owns from
// here on. Wrap conn (e.g. with byte counters) before handing it over.
func NewClient(conn net.Conn) *Client {
	c := &Client{conn: conn, pending: make(map[uint64]*Call),
		wbf: getScratch(), readDone: make(chan struct{})}
	go c.readLoop()
	return c
}

// Go issues an asynchronous call. done may be nil (a fresh buffered
// channel is allocated) but, like net/rpc, must be buffered if
// supplied. The returned Call reports exact frame sizes once finished.
func (c *Client) Go(method uint16, args Marshaler, reply Unmarshaler, done chan *Call) *Call {
	if done == nil {
		done = make(chan *Call, 1)
	}
	call := &Call{Method: method, Args: args, Reply: reply, Done: done}

	c.mu.Lock()
	if c.shutdown {
		c.mu.Unlock()
		call.finish(ErrShutdown)
		return call
	}
	c.seq++
	call.seq = c.seq
	c.pending[call.seq] = call
	c.mu.Unlock()

	// Marshal and write the frame under the write lock so the shared
	// buffer is reused across calls and frames never interleave.
	c.wmu.Lock()
	buf := *c.wbf
	buf = Header{Method: method, Seq: call.seq}.AppendTo(buf[:0])
	var err error
	if args != nil {
		if buf, err = args.AppendTo(buf); err != nil {
			err = marshalError{err}
		}
	}
	if err == nil {
		binary.LittleEndian.PutUint32(buf[16:20], uint32(len(buf)-HeaderLen))
		call.ReqBytes = int64(len(buf))
		_, err = c.conn.Write(buf)
	}
	*c.wbf = buf
	c.wmu.Unlock()

	if err != nil {
		c.forget(call.seq)
		if _, ok := err.(marshalError); ok {
			call.finish(err) // caller bug, not a transport casualty
		} else {
			c.shutdownClient()
			call.finish(ErrShutdown)
		}
	}
	return call
}

// marshalError wraps an AppendTo failure so Go can tell a bad argument
// from a dead connection.
type marshalError struct{ err error }

func (e marshalError) Error() string { return "transport: marshal: " + e.err.Error() }
func (e marshalError) Unwrap() error { return e.err }

// Call issues method and waits for the response, ctx's cancellation,
// or the connection's death, whichever is first. It returns the exact
// on-wire request and response frame sizes; on a context error the
// pending entry is forgotten and a late response is discarded.
func (c *Client) Call(ctx context.Context, method uint16, args Marshaler, reply Unmarshaler) (reqBytes, respBytes int64, err error) {
	call := c.Go(method, args, reply, make(chan *Call, 1))
	select {
	case <-ctx.Done():
		c.forget(call.seq)
		return call.ReqBytes, 0, ctx.Err()
	case <-call.Done:
		return call.ReqBytes, call.RespBytes, call.Err
	}
}

// forget abandons one pending call (deadline passed, caller moved on).
// A response that arrives later finds no owner and is discarded.
func (c *Client) forget(seq uint64) {
	c.mu.Lock()
	delete(c.pending, seq)
	c.mu.Unlock()
}

// Close tears the connection down and fails every pending call.
func (c *Client) Close() error {
	err := c.shutdownClient()
	<-c.readDone
	return err
}

// shutdownClient closes the connection once and fails every pending
// call with ErrShutdown.
func (c *Client) shutdownClient() error {
	c.mu.Lock()
	if c.shutdown {
		c.mu.Unlock()
		return nil
	}
	c.shutdown = true
	pending := c.pending
	c.pending = make(map[uint64]*Call)
	c.mu.Unlock()
	err := c.conn.Close()
	for _, call := range pending {
		call.finish(ErrShutdown)
	}
	return err
}

// readLoop demuxes response frames to their pending calls until the
// connection dies.
func (c *Client) readLoop() {
	defer close(c.readDone)
	r := bufio.NewReaderSize(c.conn, 64<<10)
	var hdr [HeaderLen]byte
	var payload []byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			c.shutdownClient()
			return
		}
		h, err := DecodeHeader(hdr[:], 0)
		if err != nil {
			c.shutdownClient()
			return
		}
		if cap(payload) < int(h.Len) {
			payload = make([]byte, h.Len)
		}
		payload = payload[:h.Len]
		if _, err := io.ReadFull(r, payload); err != nil {
			c.shutdownClient()
			return
		}
		c.mu.Lock()
		call := c.pending[h.Seq]
		delete(c.pending, h.Seq)
		c.mu.Unlock()
		if call == nil {
			continue // abandoned by deadline; the bytes still counted
		}
		call.RespBytes = int64(HeaderLen) + int64(h.Len)
		switch {
		case h.Flags&FlagError != 0:
			call.finish(ServerError(payload))
		case call.Reply == nil:
			call.finish(nil)
		default:
			if derr := call.Reply.DecodeFrom(payload); derr != nil {
				call.finish(fmt.Errorf("transport: decode method %d reply: %w", h.Method, derr))
			} else {
				call.finish(nil)
			}
		}
	}
}
