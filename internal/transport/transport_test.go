package transport

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

// echoPayload is a Marshaler/Unmarshaler over raw bytes.
type echoPayload struct{ b []byte }

func (p *echoPayload) AppendTo(dst []byte) ([]byte, error) { return append(dst, p.b...), nil }
func (p *echoPayload) DecodeFrom(data []byte) error {
	p.b = append(p.b[:0], data...)
	return nil
}

// badMarshal always fails to marshal.
type badMarshal struct{}

func (badMarshal) AppendTo([]byte) ([]byte, error) { return nil, errors.New("boom") }

// testHandler echoes payloads back; method 99 answers with an error,
// method 50 sleeps 200ms first (the deadline-mid-frame case's slow
// call), method 60 replies with an unmarshalable body.
type testHandler struct{ served sync.Map }

func (h *testHandler) ServeFrame(method uint16, payload []byte) (Marshaler, error) {
	if n, ok := h.served.Load(method); ok {
		h.served.Store(method, n.(int)+1)
	} else {
		h.served.Store(method, 1)
	}
	switch method {
	case 99:
		return nil, fmt.Errorf("verdict: method 99 rejected")
	case 50:
		time.Sleep(200 * time.Millisecond)
	case 60:
		return badMarshal{}, nil
	}
	return &echoPayload{b: append([]byte(nil), payload...)}, nil
}

// startServer runs a framed server on an ephemeral port and returns
// its address plus a shutdown func.
func startServer(t *testing.T, h Handler, opts ServeOptions) (string, func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				ServeConn(conn, h, opts)
			}()
		}
	}()
	return ln.Addr().String(), func() { ln.Close(); wg.Wait() }
}

func dialClient(t *testing.T, addr string) *Client {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	return NewClient(conn)
}

// TestCallRoundTrip sends a payload and gets the echo plus exact frame
// sizes back.
func TestCallRoundTrip(t *testing.T) {
	addr, stop := startServer(t, &testHandler{}, ServeOptions{})
	defer stop()
	cl := dialClient(t, addr)
	defer cl.Close()

	msg := []byte("hello frames")
	var reply echoPayload
	req, resp, err := cl.Call(context.Background(), 7, &echoPayload{b: msg}, &reply)
	if err != nil {
		t.Fatal(err)
	}
	if string(reply.b) != string(msg) {
		t.Fatalf("echo = %q, want %q", reply.b, msg)
	}
	if want := int64(HeaderLen + len(msg)); req != want || resp != want {
		t.Fatalf("frame sizes req=%d resp=%d, want %d (exact header+payload)", req, resp, want)
	}
}

// TestServerError surfaces worker verdicts as ServerError, distinct
// from transport failures.
func TestServerError(t *testing.T) {
	addr, stop := startServer(t, &testHandler{}, ServeOptions{})
	defer stop()
	cl := dialClient(t, addr)
	defer cl.Close()

	_, _, err := cl.Call(context.Background(), 99, &echoPayload{b: []byte("x")}, &echoPayload{})
	var se ServerError
	if !errors.As(err, &se) || !strings.Contains(se.Error(), "method 99 rejected") {
		t.Fatalf("err = %v, want ServerError with verdict", err)
	}
	// The connection survives a verdict: the next call works.
	var reply echoPayload
	if _, _, err := cl.Call(context.Background(), 1, &echoPayload{b: []byte("y")}, &reply); err != nil {
		t.Fatalf("call after verdict: %v", err)
	}
}

// TestConcurrentCallsOneConn hammers one connection from many
// goroutines and checks every reply routes back to its own call.
func TestConcurrentCallsOneConn(t *testing.T) {
	addr, stop := startServer(t, &testHandler{}, ServeOptions{})
	defer stop()
	cl := dialClient(t, addr)
	defer cl.Close()

	const callers, per = 16, 50
	var wg sync.WaitGroup
	errs := make(chan error, callers)
	for g := 0; g < callers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				msg := fmt.Sprintf("caller=%d call=%d", g, i)
				var reply echoPayload
				if _, _, err := cl.Call(context.Background(), uint16(g+1), &echoPayload{b: []byte(msg)}, &reply); err != nil {
					errs <- fmt.Errorf("%s: %v", msg, err)
					return
				}
				if string(reply.b) != msg {
					errs <- fmt.Errorf("cross-wired reply: got %q want %q", reply.b, msg)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestMidCallSever severs the connection while calls are in flight:
// every pending call must fail with ErrShutdown promptly, none may
// hang.
func TestMidCallSever(t *testing.T) {
	sever := &funcInterceptor{f: func(m uint16) Verdict {
		if m == 50 {
			return Verdict{Sever: true}
		}
		return Verdict{}
	}}
	addr, stop := startServer(t, &testHandler{}, ServeOptions{Intercept: sever})
	defer stop()
	cl := dialClient(t, addr)
	defer cl.Close()

	// Park some calls behind a slow response, then trip the sever.
	var wg sync.WaitGroup
	results := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _, err := cl.Call(context.Background(), 50, &echoPayload{b: []byte("doomed")}, &echoPayload{})
			results <- err
		}()
	}
	wg.Wait()
	close(results)
	for err := range results {
		if err == nil {
			t.Error("call survived a severed connection")
		} else if !errors.Is(err, ErrShutdown) {
			t.Errorf("severed call err = %v, want ErrShutdown", err)
		}
	}
}

// TestDeadlineMidFrame fires a per-call deadline while the server is
// still chewing on the call; the abandoned response must be discarded
// without wedging the connection for later calls.
func TestDeadlineMidFrame(t *testing.T) {
	addr, stop := startServer(t, &testHandler{}, ServeOptions{})
	defer stop()
	cl := dialClient(t, addr)
	defer cl.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, _, err := cl.Call(ctx, 50, &echoPayload{b: []byte("slow")}, &echoPayload{})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	// The late reply must be demux-discarded, not delivered to the next
	// call on the connection.
	var reply echoPayload
	if _, _, err := cl.Call(context.Background(), 2, &echoPayload{b: []byte("after")}, &reply); err != nil {
		t.Fatalf("call after abandoned deadline: %v", err)
	}
	if string(reply.b) != "after" {
		t.Fatalf("reply = %q: the abandoned response leaked into a later call", reply.b)
	}
}

// TestDropVerdict swallows a response; the caller only escapes via its
// deadline, and the server still served the call.
func TestDropVerdict(t *testing.T) {
	h := &testHandler{}
	drop := &funcInterceptor{f: func(m uint16) Verdict {
		if m == 3 {
			return Verdict{Drop: true}
		}
		return Verdict{}
	}}
	addr, stop := startServer(t, h, ServeOptions{Intercept: drop})
	defer stop()
	cl := dialClient(t, addr)
	defer cl.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, _, err := cl.Call(ctx, 3, &echoPayload{b: []byte("gone")}, &echoPayload{}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("dropped call err = %v, want deadline exceeded", err)
	}
	if n, _ := h.served.Load(uint16(3)); n == nil || n.(int) != 1 {
		t.Fatalf("dropped call served %v times, want 1", n)
	}
	// Connection must remain usable.
	if _, _, err := cl.Call(context.Background(), 4, &echoPayload{b: []byte("ok")}, &echoPayload{}); err != nil {
		t.Fatalf("call after drop: %v", err)
	}
}

// TestDelayVerdict stalls the request loop, delaying the matched call
// and everything queued behind it.
func TestDelayVerdict(t *testing.T) {
	delay := &funcInterceptor{f: func(m uint16) Verdict {
		if m == 5 {
			return Verdict{Delay: 120 * time.Millisecond}
		}
		return Verdict{}
	}}
	addr, stop := startServer(t, &testHandler{}, ServeOptions{Intercept: delay})
	defer stop()
	cl := dialClient(t, addr)
	defer cl.Close()

	start := time.Now()
	if _, _, err := cl.Call(context.Background(), 5, &echoPayload{b: []byte("late")}, &echoPayload{}); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 100*time.Millisecond {
		t.Fatalf("delayed call returned in %v, want >= ~120ms", d)
	}
}

// TestMarshalErrorDoesNotKillConn: a bad argument fails only its own
// call.
func TestMarshalErrorDoesNotKillConn(t *testing.T) {
	addr, stop := startServer(t, &testHandler{}, ServeOptions{})
	defer stop()
	cl := dialClient(t, addr)
	defer cl.Close()

	if _, _, err := cl.Call(context.Background(), 1, badMarshal{}, &echoPayload{}); err == nil {
		t.Fatal("marshal failure went unreported")
	} else if errors.Is(err, ErrShutdown) {
		t.Fatal("marshal failure shut the client down")
	}
	if _, _, err := cl.Call(context.Background(), 1, &echoPayload{b: []byte("fine")}, &echoPayload{}); err != nil {
		t.Fatalf("call after marshal error: %v", err)
	}
}

// TestUnmarshalableReply: a handler whose reply fails to marshal
// answers the caller with an error frame instead of hanging it.
func TestUnmarshalableReply(t *testing.T) {
	addr, stop := startServer(t, &testHandler{}, ServeOptions{})
	defer stop()
	cl := dialClient(t, addr)
	defer cl.Close()

	_, _, err := cl.Call(context.Background(), 60, &echoPayload{b: []byte("x")}, &echoPayload{})
	var se ServerError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want ServerError from reply marshal failure", err)
	}
}

// TestObserveExactSizes checks the server-side observe hook reports
// header+payload sizes that match what the client measured.
func TestObserveExactSizes(t *testing.T) {
	var mu sync.Mutex
	type obsRec struct{ req, resp int64 }
	seen := map[uint16]obsRec{}
	opts := ServeOptions{Observe: func(m uint16, _ time.Duration, req, resp int64) {
		mu.Lock()
		seen[m] = obsRec{req, resp}
		mu.Unlock()
	}}
	addr, stop := startServer(t, &testHandler{}, opts)
	defer stop()
	cl := dialClient(t, addr)
	defer cl.Close()

	req, resp, err := cl.Call(context.Background(), 11, &echoPayload{b: []byte("measure me")}, &echoPayload{})
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	rec := seen[11]
	mu.Unlock()
	if rec.req != req || rec.resp != resp {
		t.Fatalf("server observed req=%d resp=%d, client measured req=%d resp=%d",
			rec.req, rec.resp, req, resp)
	}
}

// TestWrongMagicKillsConn: a client that writes garbage gets its
// connection closed rather than a stuck server.
func TestWrongMagicKillsConn(t *testing.T) {
	addr, stop := startServer(t, &testHandler{}, ServeOptions{})
	defer stop()
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	junk := make([]byte, HeaderLen)
	binary.LittleEndian.PutUint32(junk[0:4], 0xDEADBEEF)
	if _, err := conn.Write(junk); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("server answered a bad-magic frame instead of closing")
	}
}

// TestGoAfterClose fails fast with ErrShutdown.
func TestGoAfterClose(t *testing.T) {
	addr, stop := startServer(t, &testHandler{}, ServeOptions{})
	defer stop()
	cl := dialClient(t, addr)
	cl.Close()
	call := cl.Go(1, &echoPayload{b: []byte("x")}, &echoPayload{}, nil)
	<-call.Done
	if !errors.Is(call.Err, ErrShutdown) {
		t.Fatalf("err = %v, want ErrShutdown", call.Err)
	}
}

// funcInterceptor adapts a func to the Interceptor interface.
type funcInterceptor struct{ f func(uint16) Verdict }

func (fi *funcInterceptor) Intercept(m uint16) Verdict { return fi.f(m) }
