package transport

import (
	"bufio"
	"encoding/binary"
	"io"
	"net"
	"sync"
	"time"
)

// Handler serves one decoded request frame: decode payload, execute,
// and return the reply as a Marshaler (marshaled by the server into
// the response frame). A returned error becomes a FlagError response —
// a worker verdict the client surfaces as ServerError. Handlers run
// concurrently, one goroutine per in-flight call, exactly like
// net/rpc's service methods.
type Handler interface {
	ServeFrame(method uint16, payload []byte) (Marshaler, error)
}

// Verdict is an Interceptor's instruction for one call. The zero value
// passes the call through untouched.
type Verdict struct {
	// Delay stalls the connection's request loop before this call is
	// dispatched — a deterministic straggler that also delays anything
	// queued behind it on the same connection.
	Delay time.Duration
	// Drop serves the call but swallows its response; only a client-side
	// deadline rescues the caller.
	Drop bool
	// Sever closes the connection before the call runs; every in-flight
	// call on it dies with a transport error, exactly like a crash.
	Sever bool
}

// Interceptor inspects every request frame before dispatch — the seam
// where fault injection lives, seeing both the method id and the raw
// connection. A nil Interceptor passes everything.
type Interceptor interface {
	Intercept(method uint16) Verdict
}

// ServeOptions tunes ServeConn.
type ServeOptions struct {
	// Intercept, when non-nil, is consulted on every request frame.
	Intercept Interceptor
	// Observe, when non-nil, is called after each served call with the
	// exact on-wire request and response frame sizes (header included;
	// respBytes is the would-be size for dropped responses) and the
	// handler's wall time.
	Observe func(method uint16, dur time.Duration, reqBytes, respBytes int64)
	// MaxPayload caps accepted payload lengths (0 = DefaultMaxPayload).
	MaxPayload uint32
}

// ServeConn runs the framed server loop on conn until the peer hangs
// up, a protocol violation occurs, or an interceptor severs it. It
// waits for in-flight handlers before returning, and always closes
// conn. Responses may interleave arbitrarily with request order —
// sequence numbers, not ordering, pair them.
func ServeConn(conn net.Conn, h Handler, opts ServeOptions) {
	s := &connServer{conn: conn, h: h, opts: opts}
	s.serve()
}

type connServer struct {
	conn net.Conn
	h    Handler
	opts ServeOptions

	wmu sync.Mutex // serializes response writes
	wg  sync.WaitGroup
}

func (s *connServer) serve() {
	defer func() {
		s.wg.Wait()
		s.conn.Close()
	}()
	r := bufio.NewReaderSize(s.conn, 64<<10)
	var hdr [HeaderLen]byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return
		}
		h, err := DecodeHeader(hdr[:], s.opts.MaxPayload)
		if err != nil {
			// Can't resync a framed stream after a bad header; kill the
			// connection and let the client's retry layer take over.
			return
		}
		payload := make([]byte, h.Len)
		if _, err := io.ReadFull(r, payload); err != nil {
			return
		}
		drop := false
		if s.opts.Intercept != nil {
			switch v := s.opts.Intercept.Intercept(h.Method); {
			case v.Sever:
				// Close before the call runs: pending calls on this conn
				// die with a transport error, like a worker crash.
				return
			case v.Delay > 0:
				// Stall the request loop: this call and anything queued
				// behind it on the connection is served late.
				time.Sleep(v.Delay)
				drop = v.Drop
			default:
				drop = v.Drop
			}
		}
		s.wg.Add(1)
		go s.dispatch(h, payload, drop)
	}
}

// dispatch executes one call and writes (or, for dropped calls,
// discards) its response frame.
func (s *connServer) dispatch(h Header, payload []byte, drop bool) {
	defer s.wg.Done()
	start := time.Now()
	reply, err := s.h.ServeFrame(h.Method, payload)

	out := getScratch()
	buf := *out
	resp := Header{Method: h.Method, Seq: h.Seq}
	if err != nil {
		resp.Flags |= FlagError
		buf = resp.AppendTo(buf[:0])
		buf = append(buf, err.Error()...)
	} else {
		buf = resp.AppendTo(buf[:0])
		if reply != nil {
			var merr error
			if buf, merr = reply.AppendTo(buf); merr != nil {
				// The handler produced an unmarshalable reply; answer with
				// the marshal error so the caller is not left hanging.
				buf = Header{Method: h.Method, Seq: h.Seq, Flags: FlagError}.AppendTo(buf[:0])
				buf = append(buf, merr.Error()...)
			}
		}
	}
	binary.LittleEndian.PutUint32(buf[16:20], uint32(len(buf)-HeaderLen))

	if !drop {
		s.wmu.Lock()
		_, _ = s.conn.Write(buf)
		s.wmu.Unlock()
	}
	if s.opts.Observe != nil {
		s.opts.Observe(h.Method, time.Since(start),
			int64(HeaderLen)+int64(h.Len), int64(len(buf)))
	}
	*out = buf
	putScratch(out)
}
