package transport

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzFrameRoundTrip feeds arbitrary bytes through the header decoder
// and, when a frame survives, re-encodes it and checks the bytes are
// identical. The seed corpus covers the interesting failure classes:
// truncated headers, oversized announced lengths, wrong magic, and an
// interleaved-sequence pair of frames.
func FuzzFrameRoundTrip(f *testing.F) {
	frame := func(method uint16, flags Flags, seq uint64, payload []byte) []byte {
		h := Header{Method: method, Flags: flags, Seq: seq, Len: uint32(len(payload))}
		return append(h.AppendTo(nil), payload...)
	}

	// A clean small frame.
	f.Add(frame(3, 0, 1, []byte("payload")))
	// Error-flagged response frame.
	f.Add(frame(9, FlagError, 42, []byte("rule 7 not loaded")))
	// Truncated: header cut mid-sequence field.
	f.Add(frame(1, 0, 7, nil)[:12])
	// Truncated: full header but payload shorter than announced.
	f.Add(frame(2, 0, 8, []byte("abcdef"))[:HeaderLen+3])
	// Oversized announced length (4 GiB-1) with no payload behind it.
	over := frame(4, 0, 9, nil)
	binary.LittleEndian.PutUint32(over[16:20], 0xFFFFFFFF)
	f.Add(over)
	// Wrong magic — a gob client's first bytes, say.
	wrong := frame(5, 0, 10, []byte("x"))
	binary.LittleEndian.PutUint32(wrong[0:4], 0x0BAD0BAD)
	f.Add(wrong)
	// Nonzero reserved byte.
	resv := frame(6, 0, 11, nil)
	resv[7] = 0x80
	f.Add(resv)
	// Interleaved sequences: two complete frames back to back with
	// out-of-order sequence numbers, as a demuxing stream would see.
	f.Add(append(frame(7, 0, 100, []byte("second issued")),
		frame(7, 0, 99, []byte("first issued"))...))

	f.Fuzz(func(t *testing.T, data []byte) {
		// Walk the input as a stream of frames, like the read loops do.
		rest := data
		for len(rest) >= HeaderLen {
			h, err := DecodeHeader(rest[:HeaderLen], 0)
			if err != nil {
				// Rejected header: decoder must not have mutated its input.
				return
			}
			if h.Len > uint32(len(rest)-HeaderLen) {
				return // truncated payload; stream would block then die
			}
			// Round-trip: re-encoding the decoded header must reproduce
			// the original header bytes exactly.
			re := h.AppendTo(nil)
			if !bytes.Equal(re, rest[:HeaderLen]) {
				t.Fatalf("header round-trip mismatch:\n in=%x\nout=%x", rest[:HeaderLen], re)
			}
			if len(re) != HeaderLen {
				t.Fatalf("encoded header is %d bytes, want %d", len(re), HeaderLen)
			}
			rest = rest[HeaderLen+int(h.Len):]
		}
	})
}
