// Package seq implements the centralized (single-worker) skyline
// algorithms the paper uses as local building blocks and baselines:
//
//   - BNL: Börzsönyi et al.'s block-nested-loops over an unsorted
//     input.
//   - SB ("sort-based"): sort by the sum of coordinates first, then a
//     single filtering pass — the paper's SB local algorithm (§6.1).
//     Sorting by a monotone score makes the window append-only.
//   - BruteForce: the quadratic oracle used by tests.
//
// The paper's third algorithm, Z-search (ZS), lives in package zbtree
// because it is built on the ZB-tree index.
package seq

import (
	"sort"

	"zskyline/internal/metrics"
	"zskyline/internal/point"
)

// BruteForce computes the skyline by comparing all pairs. It is the
// O(n^2 d) oracle the rest of the test suite is validated against.
// Duplicate points (identical coordinates) are all retained, since
// equal points do not dominate one another.
func BruteForce(pts []point.Point) []point.Point {
	var out []point.Point
	for i, p := range pts {
		dominated := false
		for j, q := range pts {
			if i == j {
				continue
			}
			if point.Dominates(q, p) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, p)
		}
	}
	return out
}

// BNL is the classic block-nested-loops skyline: maintain a window of
// incomparable points; each input point is compared against the
// window, evicting dominated window entries and being discarded if it
// is itself dominated. tally may be nil.
func BNL(pts []point.Point, tally *metrics.Tally) []point.Point {
	window := make([]point.Point, 0, 64)
	var tests int64
	for _, p := range pts {
		dominated := false
		w := window[:0]
		for i, q := range window {
			tests++
			rel := point.Compare(q, p)
			if rel == point.PDominatesQ { // q dominates p
				dominated = true
				w = append(w, window[i:]...)
				break
			}
			if rel == point.QDominatesP { // p dominates q: evict q
				continue
			}
			w = append(w, q)
		}
		window = w
		if !dominated {
			window = append(window, p)
		}
	}
	tally.AddDominanceTests(tests)
	return window
}

// SB sorts the input by the sum of coordinates (a topological order
// for dominance: a dominator always has a strictly smaller sum) and
// then performs one filtering pass. After sorting, no later point can
// dominate an earlier one, so the window only grows — this is the
// paper's "sort data first, then Block-Nest-Loop" local algorithm.
func SB(pts []point.Point, tally *metrics.Tally) []point.Point {
	sorted := make([]point.Point, len(pts))
	copy(sorted, pts)
	sort.SliceStable(sorted, func(i, j int) bool {
		return point.SumCoords(sorted[i]) < point.SumCoords(sorted[j])
	})
	var out []point.Point
	var tests int64
	for _, p := range sorted {
		dominated := false
		for _, q := range out {
			tests++
			if point.Dominates(q, p) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, p)
		}
	}
	tally.AddDominanceTests(tests)
	return out
}

// Filter removes from candidates every point dominated by some point
// in against (exact float tests). It is the primitive mappers use to
// apply the sample-skyline filter when no index is available.
func Filter(candidates, against []point.Point, tally *metrics.Tally) []point.Point {
	var out []point.Point
	var tests int64
	for _, p := range candidates {
		dominated := false
		for _, q := range against {
			tests++
			if point.Dominates(q, p) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, p)
		}
	}
	tally.AddDominanceTests(tests)
	return out
}
