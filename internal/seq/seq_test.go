package seq

import (
	"math/rand"
	"testing"

	"zskyline/internal/metrics"
	"zskyline/internal/point"
)

func randomPoints(r *rand.Rand, n, d int, domain int) []point.Point {
	pts := make([]point.Point, n)
	for i := range pts {
		p := make(point.Point, d)
		for k := range p {
			if domain > 0 {
				p[k] = float64(r.Intn(domain)) // integer grid: lots of ties
			} else {
				p[k] = r.Float64()
			}
		}
		pts[i] = p
	}
	return pts
}

func sameSkyline(t *testing.T, got, want []point.Point, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d points, want %d", label, len(got), len(want))
	}
	g := make([]point.Point, len(got))
	w := make([]point.Point, len(want))
	copy(g, got)
	copy(w, want)
	point.SortLexicographic(g)
	point.SortLexicographic(w)
	for i := range g {
		if !g[i].Equal(w[i]) {
			t.Fatalf("%s: skyline[%d] = %v, want %v", label, i, g[i], w[i])
		}
	}
}

func TestKnownSkyline2D(t *testing.T) {
	// The hotels example from the paper's Figure 1: distance vs rate.
	pts := []point.Point{
		{1, 9}, // p1: nearest, most expensive
		{2, 6},
		{4, 4},
		{6, 3},
		{7, 2},
		{8, 5}, // dominated by (7,2)? 7<8, 2<5 yes
		{9, 1},
	}
	want := []point.Point{{1, 9}, {2, 6}, {4, 4}, {6, 3}, {7, 2}, {9, 1}}
	sameSkyline(t, BruteForce(pts), want, "brute")
	sameSkyline(t, BNL(pts, nil), want, "bnl")
	sameSkyline(t, SB(pts, nil), want, "sb")
}

func TestEmptyAndSingleton(t *testing.T) {
	if got := BNL(nil, nil); len(got) != 0 {
		t.Errorf("BNL(nil) = %v", got)
	}
	if got := SB(nil, nil); len(got) != 0 {
		t.Errorf("SB(nil) = %v", got)
	}
	one := []point.Point{{1, 2}}
	if got := BNL(one, nil); len(got) != 1 {
		t.Errorf("BNL singleton = %v", got)
	}
	if got := SB(one, nil); len(got) != 1 {
		t.Errorf("SB singleton = %v", got)
	}
}

func TestAllIdenticalPoints(t *testing.T) {
	pts := []point.Point{{3, 3}, {3, 3}, {3, 3}}
	for _, algo := range []struct {
		name string
		f    func([]point.Point, *metrics.Tally) []point.Point
	}{{"bnl", BNL}, {"sb", SB}} {
		if got := algo.f(pts, nil); len(got) != 3 {
			t.Errorf("%s on identical points kept %d, want 3", algo.name, len(got))
		}
	}
}

func TestTotallyOrderedChain(t *testing.T) {
	// p_i = (i, i, i): only the first survives.
	var pts []point.Point
	for i := 10; i > 0; i-- {
		pts = append(pts, point.Point{float64(i), float64(i), float64(i)})
	}
	want := []point.Point{{1, 1, 1}}
	sameSkyline(t, BNL(pts, nil), want, "bnl")
	sameSkyline(t, SB(pts, nil), want, "sb")
}

func TestAntiChain(t *testing.T) {
	// Anti-correlated diagonal: every point is a skyline point.
	var pts []point.Point
	for i := 0; i < 20; i++ {
		pts = append(pts, point.Point{float64(i), float64(19 - i)})
	}
	if got := BNL(pts, nil); len(got) != 20 {
		t.Errorf("BNL kept %d, want 20", len(got))
	}
	if got := SB(pts, nil); len(got) != 20 {
		t.Errorf("SB kept %d, want 20", len(got))
	}
}

// Property: BNL and SB agree with BruteForce on random inputs, across
// dimensionalities and tie-heavy integer domains.
func TestAlgorithmsAgreeWithOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for iter := 0; iter < 120; iter++ {
		d := 1 + rng.Intn(6)
		n := rng.Intn(120)
		domain := 0
		if iter%2 == 0 {
			domain = 2 + rng.Intn(6) // force ties and duplicates
		}
		pts := randomPoints(rng, n, d, domain)
		want := BruteForce(pts)
		sameSkyline(t, BNL(pts, nil), want, "bnl")
		sameSkyline(t, SB(pts, nil), want, "sb")
	}
}

func TestInputNotMutated(t *testing.T) {
	pts := []point.Point{{5, 5}, {1, 1}, {3, 3}}
	orig := make([]point.Point, len(pts))
	for i, p := range pts {
		orig[i] = p.Clone()
	}
	SB(pts, nil)
	BNL(pts, nil)
	for i := range pts {
		if !pts[i].Equal(orig[i]) {
			t.Fatalf("input mutated at %d: %v", i, pts[i])
		}
	}
	// Order must also be preserved for SB (it copies before sorting).
	if !pts[0].Equal(point.Point{5, 5}) {
		t.Error("SB reordered its input")
	}
}

func TestFilter(t *testing.T) {
	cands := []point.Point{{1, 5}, {4, 4}, {6, 6}}
	against := []point.Point{{5, 5}, {2, 9}}
	got := Filter(cands, against, nil)
	// (6,6) dominated by (5,5); others survive.
	sameSkyline(t, got, []point.Point{{1, 5}, {4, 4}}, "filter")
	if got := Filter(nil, against, nil); len(got) != 0 {
		t.Errorf("Filter(nil) = %v", got)
	}
	if got := Filter(cands, nil, nil); len(got) != 3 {
		t.Errorf("Filter against nothing dropped points: %v", got)
	}
}

func TestTallyCounts(t *testing.T) {
	tal := &metrics.Tally{}
	pts := randomPoints(rand.New(rand.NewSource(3)), 200, 3, 0)
	BNL(pts, tal)
	if tal.Snapshot().DominanceTests == 0 {
		t.Error("BNL recorded no dominance tests")
	}
	tal2 := &metrics.Tally{}
	SB(pts, tal2)
	if tal2.Snapshot().DominanceTests == 0 {
		t.Error("SB recorded no dominance tests")
	}
	// SB should need no more tests than BNL on the same input (its
	// window is append-only and checks stop at first dominator).
	if tal2.Snapshot().DominanceTests > tal.Snapshot().DominanceTests*2 {
		t.Errorf("SB used %d tests vs BNL %d", tal2.Snapshot().DominanceTests, tal.Snapshot().DominanceTests)
	}
}

func BenchmarkBNL1k5d(b *testing.B) {
	pts := randomPoints(rand.New(rand.NewSource(1)), 1000, 5, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BNL(pts, nil)
	}
}

func BenchmarkSB1k5d(b *testing.B) {
	pts := randomPoints(rand.New(rand.NewSource(1)), 1000, 5, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SB(pts, nil)
	}
}

func TestDCMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for iter := 0; iter < 100; iter++ {
		d := 1 + rng.Intn(6)
		n := rng.Intn(600)
		domain := 0
		if iter%2 == 0 {
			domain = 2 + rng.Intn(5)
		}
		pts := randomPoints(rng, n, d, domain)
		sameSkyline(t, DC(pts, nil), BruteForce(pts), "dc")
	}
}

func TestDCEdgeCases(t *testing.T) {
	if got := DC(nil, nil); got != nil {
		t.Errorf("DC(nil) = %v", got)
	}
	// All identical: everything survives, recursion must terminate.
	pts := make([]point.Point, 500)
	for i := range pts {
		pts[i] = point.Point{1, 2, 3}
	}
	if got := DC(pts, nil); len(got) != 500 {
		t.Errorf("DC identical kept %d, want 500", len(got))
	}
	// One constant dimension, one varying.
	var mixed []point.Point
	for i := 0; i < 300; i++ {
		mixed = append(mixed, point.Point{5, float64(i % 7)})
	}
	sameSkyline(t, DC(mixed, nil), BruteForce(mixed), "dc-mixed")
}

func TestDCDoesNotMutateInput(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	pts := randomPoints(rng, 300, 3, 0)
	orig := make([]point.Point, len(pts))
	for i, p := range pts {
		orig[i] = p.Clone()
	}
	DC(pts, nil)
	for i := range pts {
		if !pts[i].Equal(orig[i]) {
			t.Fatal("DC mutated its input")
		}
	}
}

func BenchmarkDC10k5d(b *testing.B) {
	pts := randomPoints(rand.New(rand.NewSource(1)), 10000, 5, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DC(pts, nil)
	}
}
