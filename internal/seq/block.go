package seq

import (
	"sort"

	"zskyline/internal/metrics"
	"zskyline/internal/point"
)

// Block-native variants of the centralized kernels. They operate on
// contiguous point.Blocks via row-index permutations — no per-point
// slice headers on the hot path — and compact survivors into a fresh
// block. Each is semantically identical to its slice counterpart
// (same sort keys, same tie rules, same dominance tests), which the
// property tests in block_test.go pin down against seq.BruteForce.

// SBBlock is SB over a block: stable-sort a permutation of row indices
// by coordinate sum, then one filtering pass with an append-only
// window of survivor rows.
func SBBlock(b point.Block, tally *metrics.Tally) point.Block {
	n := b.Len()
	if n == 0 {
		return point.Block{Dims: b.Dims}
	}
	sums := make([]float64, n)
	perm := make([]int32, n)
	for i := 0; i < n; i++ {
		sums[i] = point.SumCoords(b.Row(i))
		perm[i] = int32(i)
	}
	sort.SliceStable(perm, func(i, j int) bool { return sums[perm[i]] < sums[perm[j]] })
	window := make([]int32, 0, 64)
	var tests int64
	for _, ri := range perm {
		p := b.Row(int(ri))
		dominated := false
		for _, wi := range window {
			tests++
			if point.Dominates(b.Row(int(wi)), p) {
				dominated = true
				break
			}
		}
		if !dominated {
			window = append(window, ri)
		}
	}
	tally.AddDominanceTests(tests)
	return compactRows(b, window)
}

// BNLBlock is BNL over a block: the window holds row indices and is
// compacted in place on eviction.
func BNLBlock(b point.Block, tally *metrics.Tally) point.Block {
	n := b.Len()
	if n == 0 {
		return point.Block{Dims: b.Dims}
	}
	window := make([]int32, 0, 64)
	var tests int64
	for i := 0; i < n; i++ {
		p := b.Row(i)
		dominated := false
		w := window[:0]
		for k, wi := range window {
			tests++
			rel := point.Compare(b.Row(int(wi)), p)
			if rel == point.PDominatesQ { // window row dominates p
				dominated = true
				w = append(w, window[k:]...)
				break
			}
			if rel == point.QDominatesP { // p dominates window row: evict
				continue
			}
			w = append(w, wi)
		}
		window = w
		if !dominated {
			window = append(window, int32(i))
		}
	}
	tally.AddDominanceTests(tests)
	return compactRows(b, window)
}

// FilterBlock removes from candidates every row dominated by some row
// of against (exact float tests), compacting survivors.
func FilterBlock(candidates, against point.Block, tally *metrics.Tally) point.Block {
	n := candidates.Len()
	if n == 0 {
		return point.Block{Dims: candidates.Dims}
	}
	kept := make([]int32, 0, n)
	var tests int64
	m := against.Len()
	for i := 0; i < n; i++ {
		p := candidates.Row(i)
		dominated := false
		for j := 0; j < m; j++ {
			tests++
			if point.Dominates(against.Row(j), p) {
				dominated = true
				break
			}
		}
		if !dominated {
			kept = append(kept, int32(i))
		}
	}
	tally.AddDominanceTests(tests)
	return compactRows(candidates, kept)
}

// compactRows copies the selected rows of b into a fresh block, so
// results never pin the input arena.
func compactRows(b point.Block, rows []int32) point.Block {
	out := point.Block{Dims: b.Dims}
	if len(rows) == 0 {
		return out
	}
	out.Data = make([]float64, 0, len(rows)*b.Dims)
	for _, r := range rows {
		out.Data = append(out.Data, b.Row(int(r))...)
	}
	return out
}
