package seq

import (
	"math/rand"
	"testing"
	"testing/quick"

	"zskyline/internal/metrics"
	"zskyline/internal/point"
)

func genTestBlock(rng *rand.Rand, kind string, n, d int) point.Block {
	bb := point.NewBlockBuilder(d, n)
	for i := 0; i < n; i++ {
		row := bb.Extend()
		switch kind {
		case "correlated":
			base := rng.Float64()
			for k := range row {
				row[k] = 0.8*base + 0.2*rng.Float64()
			}
		case "anti":
			sum := 0.5 + 0.5*rng.Float64()
			for k := range row {
				row[k] = sum * rng.Float64()
			}
		default:
			for k := range row {
				// Coarse values manufacture sum ties and duplicates.
				if rng.Intn(3) == 0 {
					row[k] = float64(rng.Intn(4)) / 4
				} else {
					row[k] = rng.Float64()
				}
			}
		}
	}
	return bb.Build()
}

func sortedCopy(pts []point.Point) []point.Point {
	out := append([]point.Point(nil), pts...)
	point.SortLexicographic(out)
	return out
}

func assertSameSet(t *testing.T, label string, got, want []point.Point) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d points, want %d", label, len(got), len(want))
	}
	g, w := sortedCopy(got), sortedCopy(want)
	for i := range g {
		if !g[i].Equal(w[i]) {
			t.Fatalf("%s: point %d = %v, want %v", label, i, g[i], w[i])
		}
	}
}

// Block kernels must return point-for-point identical results to their
// slice counterparts and the brute-force oracle, across correlation
// profiles and 2–10 dims.
func TestBlockKernelsMatchSlice(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, kind := range []string{"correlated", "independent", "anti"} {
		for _, d := range []int{2, 4, 6, 10} {
			b := genTestBlock(rng, kind, 350, d)
			pts := b.Points()
			oracle := BruteForce(pts)

			sbSlice := SB(pts, nil)
			sbBlock := SBBlock(b, nil)
			assertSameSet(t, kind+"/SB-oracle", sbSlice, oracle)
			assertSameSet(t, kind+"/SBBlock", sbBlock.Points(), sbSlice)
			// SB's output order is deterministic (stable sum sort):
			// block and slice must agree row for row, not just as sets.
			for i, p := range sbSlice {
				if !sbBlock.Row(i).Equal(p) {
					t.Fatalf("%s d=%d: SBBlock row %d = %v, slice %v", kind, d, i, sbBlock.Row(i), p)
				}
			}

			bnlSlice := BNL(pts, nil)
			bnlBlock := BNLBlock(b, nil)
			assertSameSet(t, kind+"/BNLBlock", bnlBlock.Points(), oracle)
			for i, p := range bnlSlice {
				if !bnlBlock.Row(i).Equal(p) {
					t.Fatalf("%s d=%d: BNLBlock row %d = %v, slice %v", kind, d, i, bnlBlock.Row(i), p)
				}
			}

			against := genTestBlock(rng, kind, 80, d)
			fSlice := Filter(pts, against.Points(), nil)
			fBlock := FilterBlock(b, against, nil)
			assertSameSet(t, kind+"/FilterBlock", fBlock.Points(), fSlice)
		}
	}
}

// Tally accounting must be identical between slice and block variants:
// they run the same comparisons in the same order.
func TestBlockKernelsSameTally(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	b := genTestBlock(rng, "independent", 500, 5)
	pts := b.Points()
	var ts, tb metrics.Tally
	SB(pts, &ts)
	SBBlock(b, &tb)
	if got, want := tb.Snapshot().DominanceTests, ts.Snapshot().DominanceTests; got != want {
		t.Fatalf("SBBlock tests %d, SB %d", got, want)
	}
	var bs, bb metrics.Tally
	BNL(pts, &bs)
	BNLBlock(b, &bb)
	if got, want := bb.Snapshot().DominanceTests, bs.Snapshot().DominanceTests; got != want {
		t.Fatalf("BNLBlock tests %d, BNL %d", got, want)
	}
}

// Quick property: for arbitrary seeds, SBBlock == BNLBlock == oracle.
func TestQuickBlockKernels(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 2 + rng.Intn(9)
		n := rng.Intn(300)
		b := genTestBlock(rng, []string{"correlated", "independent", "anti"}[rng.Intn(3)], n, d)
		oracle := BruteForce(b.Points())
		sb := SBBlock(b, nil)
		bnl := BNLBlock(b, nil)
		if sb.Len() != len(oracle) || bnl.Len() != len(oracle) {
			return false
		}
		o := sortedCopy(oracle)
		s := sortedCopy(sb.Points())
		n2 := sortedCopy(bnl.Points())
		for i := range o {
			if !s[i].Equal(o[i]) || !n2[i].Equal(o[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Empty and degenerate inputs.
func TestBlockKernelsDegenerate(t *testing.T) {
	empty := point.Block{Dims: 3}
	if got := SBBlock(empty, nil); got.Len() != 0 || got.Dims != 3 {
		t.Fatalf("SBBlock(empty) = %v", got)
	}
	if got := BNLBlock(empty, nil); got.Len() != 0 {
		t.Fatalf("BNLBlock(empty) = %v", got)
	}
	if got := FilterBlock(empty, empty, nil); got.Len() != 0 {
		t.Fatalf("FilterBlock(empty) = %v", got)
	}
	// All-duplicate rows: equal points never dominate each other.
	one := point.BlockOf(2, []point.Point{{1, 2}, {1, 2}, {1, 2}})
	if got := SBBlock(one, nil); got.Len() != 3 {
		t.Fatalf("SBBlock(dups) kept %d rows, want 3", got.Len())
	}
}
