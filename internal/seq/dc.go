package seq

import (
	"sort"

	"zskyline/internal/metrics"
	"zskyline/internal/point"
)

// dcBase is the subproblem size below which DC falls back to SB.
const dcBase = 64

// DC is Börzsönyi et al.'s divide-and-conquer skyline: split at the
// median of one dimension, solve both halves recursively, and filter
// the upper half's skyline against the lower half's (points with a
// strictly smaller split coordinate can never be dominated from the
// upper half). Included as the classic centralized baseline alongside
// BNL and SB.
func DC(pts []point.Point, tally *metrics.Tally) []point.Point {
	if len(pts) == 0 {
		return nil
	}
	work := make([]point.Point, len(pts))
	copy(work, pts)
	return dc(work, 0, tally)
}

// dc consumes (and may reorder) its input slice.
func dc(pts []point.Point, dim int, tally *metrics.Tally) []point.Point {
	if len(pts) <= dcBase {
		return SB(pts, tally)
	}
	d := len(pts[0])
	// Find a dimension (starting at dim, cycling) whose median actually
	// splits the data; fully-duplicated dimensions cannot.
	for tries := 0; tries < d; tries++ {
		k := (dim + tries) % d
		sort.SliceStable(pts, func(i, j int) bool { return pts[i][k] < pts[j][k] })
		median := pts[len(pts)/2][k]
		// Prefer lower = {v <= median}; when the median equals the
		// maximum that cut is empty, so fall back to lower = {v <
		// median}. Either way every lower coordinate is strictly below
		// every upper coordinate on dimension k.
		split := sort.Search(len(pts), func(i int) bool { return pts[i][k] > median })
		if split == len(pts) {
			split = sort.Search(len(pts), func(i int) bool { return pts[i][k] >= median })
		}
		if split == 0 || split == len(pts) {
			continue // dimension is constant; try another
		}
		lower := dc(pts[:split], (k+1)%d, tally)
		upper := dc(pts[split:], (k+1)%d, tally)
		// Points in lower have coordinate <= median < upper's, so no
		// upper point dominates a lower point; only the reverse filter
		// is needed. The result must be a fresh slice: lower may alias
		// pts, and appending in place would stomp the parent's halves.
		kept := Filter(upper, lower, tally)
		out := make([]point.Point, 0, len(lower)+len(kept))
		out = append(out, lower...)
		out = append(out, kept...)
		return out
	}
	// Every dimension is constant across pts: all points are identical,
	// so none dominates another.
	return pts
}
