package seq

import (
	"zskyline/internal/dominance"
	"zskyline/internal/metrics"
	"zskyline/internal/point"
)

// Provider-aware forms of the centralized kernels. The classic Pareto
// relation routes to the hardcoded fast paths above; every other
// provider goes through the generic kernels of package dominance.
// SkylineUnder is the sequential reference implementation that the
// parallel and distributed executors are required to reproduce
// exactly, provider by provider.

// SkylineUnder computes the exact provider skyline of pts on a single
// worker. tally may be nil.
func SkylineUnder(prov dominance.Provider, pts []point.Point, tally *metrics.Tally) []point.Point {
	if dominance.IsPareto(prov) {
		return SB(pts, tally)
	}
	return dominance.Skyline(prov, pts, tally)
}

// SkylineBlockUnder is SkylineUnder over a block, compacting survivors
// into a fresh block.
func SkylineBlockUnder(prov dominance.Provider, b point.Block, tally *metrics.Tally) point.Block {
	if dominance.IsPareto(prov) {
		return SBBlock(b, tally)
	}
	return dominance.SkylineBlock(prov, b, tally)
}

// FilterBlockUnder removes from candidates every row some row of
// against provider-dominates (membership-sound under any irreflexive
// relation, since eliminations cite a real point).
func FilterBlockUnder(prov dominance.Provider, candidates, against point.Block, tally *metrics.Tally) point.Block {
	if dominance.IsPareto(prov) {
		return FilterBlock(candidates, against, tally)
	}
	return dominance.FilterBlock(prov, candidates, against, tally)
}
