package core

import (
	"context"
	"sync"
	"time"

	"zskyline/internal/mapreduce"
	"zskyline/internal/metrics"
	"zskyline/internal/obs"
	"zskyline/internal/plan"
	"zskyline/internal/point"
)

// candidate is a phase-2 output record.
type candidate struct {
	gid int
	p   point.Point
}

// mergeRec is a phase-3 shuffle record: a candidate tagged with the
// merge task it belongs to.
type mergeRec struct {
	task, gid int
	p         point.Point
}

// mrExec schedules plan phases as jobs on the MapReduce simulator. It
// implements plan.MapReducer so phase 2 stays one fused job — keeping
// the simulator's combiner and its shuffle/straggler/fault accounting
// — and runs phase 3 as a second job. The embedded LocalExec serves
// the plain map/reduce task interfaces, which plan.Run bypasses here.
type mrExec struct {
	*plan.LocalExec
	cluster *mapreduce.Cluster
	splits  int
	dims    int

	job1, job2 *mapreduce.JobStats
}

// MapReduce runs MapReduce job 1 (Algorithm 3) and returns the
// candidate groups in deterministic gid order. The simulator is
// record-oriented, so the input blocks are flattened to zero-copy row
// views at the boundary.
func (ex *mrExec) MapReduce(ctx context.Context, r *plan.Rule, chunks []point.Block, tally *metrics.Tally) ([]plan.Group, int64, error) {
	var n int
	for _, b := range chunks {
		n += b.Len()
	}
	pts := make([]point.Point, 0, n)
	for _, b := range chunks {
		pts = b.AppendPoints(pts)
	}
	var filtered metrics.Tally
	dims := ex.dims
	// The simulator calls Map once per record from concurrent tasks;
	// pooling Routers keeps the per-point route (grid quantization,
	// SZB probe, Z-encode) allocation-free instead of paying
	// Rule.Route's per-call scratch.
	routers := sync.Pool{New: func() any { return r.NewRouter() }}
	job := mapreduce.Job[point.Point, int, point.Point, candidate]{
		Name: "skyline-candidates",
		Map: func(_ *mapreduce.TaskContext, p point.Point, emit func(int, point.Point)) error {
			rt := routers.Get().(*plan.Router)
			gid, ok := rt.Route(p)
			routers.Put(rt)
			if !ok {
				filtered.AddPointsPruned(1)
				return nil
			}
			emit(gid, p)
			return nil
		},
		Combine: func(_ *mapreduce.TaskContext, _ int, vals []point.Point) []point.Point {
			return r.LocalSkyline(vals, tally)
		},
		Reduce: func(_ *mapreduce.TaskContext, gid int, vals []point.Point, emit func(candidate)) error {
			for _, p := range r.LocalSkyline(vals, tally) {
				emit(candidate{gid: gid, p: p})
			}
			return nil
		},
		Partition: func(gid, n int) int { return gid % n },
		Reducers:  r.Groups(),
		SizeOf:    func(_ int, _ point.Point) int { return 8*dims + 8 },
		Tally:     tally,
	}
	start := time.Now()
	out, stats, err := mapreduce.Run(ctx, ex.cluster, job, mapreduce.SplitSlice(pts, ex.splits))
	if err != nil {
		return nil, 0, err
	}
	ex.job1 = stats
	dropped := filtered.Snapshot().PointsPruned
	tally.AddPointsPruned(dropped)

	// The simulator fuses phase 2 into one job; reconstruct the
	// taxonomy's map and local-skyline spans from the job's phase walls
	// (the MapReducer observability contract).
	if sp := obs.SpanFrom(ctx); sp != nil {
		mapSp := sp.ChildAt("map", start, stats.MapWall)
		mapSp.SetAttr("tasks", len(stats.MapStats))
		mapSp.SetAttr("filtered", dropped)
		mapSp.SetAttr("fused", "simulator")
		mapSp.SetAttr("shuffle_bytes", stats.ShuffleBytes)
		redSp := sp.ChildAt("local-skyline", start.Add(stats.MapWall), stats.ReduceWall)
		redSp.SetAttr("groups", len(stats.ReduceStats))
		redSp.SetAttr("candidates", len(out))
		redSp.SetAttr("fused", "simulator")
		redSp.SetAttr("reduce_balance", stats.ReduceInputBalance().String())
	}

	// Regroup the reducer output (already in deterministic reducer /
	// first-seen order) into per-group candidate blocks.
	byGroup := map[int]*point.BlockBuilder{}
	var order []int
	for _, c := range out {
		bb, seen := byGroup[c.gid]
		if !seen {
			bb = point.NewBlockBuilder(dims, 0)
			byGroup[c.gid] = bb
			order = append(order, c.gid)
		}
		bb.Append(c.p)
	}
	groups := make([]plan.Group, len(order))
	for i, gid := range order {
		groups[i] = plan.Group{Gid: gid, Block: byGroup[gid].Build()}
	}
	return groups, dropped, nil
}

// RunMerges runs MapReduce job 2 (§5.3): every merge task becomes one
// reducer, and each reducer Z-merges (or recomputes) its groups.
func (ex *mrExec) RunMerges(ctx context.Context, r *plan.Rule, tasks [][]plan.Group, tally *metrics.Tally) ([]plan.Group, error) {
	var recs []mergeRec
	for t, groups := range tasks {
		for _, g := range groups {
			rows := g.Block.Len()
			for i := 0; i < rows; i++ {
				recs = append(recs, mergeRec{task: t, gid: g.Gid, p: g.Block.Row(i)})
			}
		}
	}
	outs := make([]plan.Group, len(tasks))
	if len(recs) == 0 {
		ex.job2 = &mapreduce.JobStats{Name: "skyline-merge"}
		return outs, nil
	}
	dims := ex.dims
	job := mapreduce.Job[mergeRec, int, mergeRec, mergeRec]{
		Name: "skyline-merge",
		Map: func(_ *mapreduce.TaskContext, rec mergeRec, emit func(int, mergeRec)) error {
			emit(rec.task, rec)
			return nil
		},
		Reduce: func(_ *mapreduce.TaskContext, task int, vals []mergeRec, emit func(mergeRec)) error {
			byGroup := map[int]*point.BlockBuilder{}
			var order []int
			for _, rec := range vals {
				bb, seen := byGroup[rec.gid]
				if !seen {
					bb = point.NewBlockBuilder(dims, 0)
					byGroup[rec.gid] = bb
					order = append(order, rec.gid)
				}
				bb.Append(rec.p)
			}
			groups := make([]plan.Group, len(order))
			for i, gid := range order {
				groups[i] = plan.Group{Gid: gid, Block: byGroup[gid].Build()}
			}
			for _, p := range r.MergeGroups(groups, tally) {
				emit(mergeRec{task: task, p: p})
			}
			return nil
		},
		Partition: func(task, n int) int { return task % n },
		Reducers:  len(tasks),
		SizeOf:    func(_ int, _ mergeRec) int { return 8*dims + 16 },
		Tally:     tally,
	}
	out, stats, err := mapreduce.Run(ctx, ex.cluster, job, mapreduce.SplitSlice(recs, ex.splits))
	if err != nil {
		return nil, err
	}
	ex.job2 = stats
	if sp := obs.SpanFrom(ctx); sp != nil {
		sp.SetAttr("fused", "simulator")
		sp.SetAttr("shuffle_bytes", stats.ShuffleBytes)
	}
	perTask := make([][]point.Point, len(tasks))
	for _, rec := range out {
		perTask[rec.task] = append(perTask[rec.task], rec.p)
	}
	// The simulator shuffles records, not columns, so the merged
	// groups come back without a Z-address column; tree-merge rounds
	// re-encode at the (small) merge output. Executors that keep the
	// column (LocalExec, dist) avoid that.
	for t, pts := range perTask {
		outs[t] = plan.Group{Gid: t, Block: point.BlockOf(dims, pts)}
	}
	return outs, nil
}
