package core

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"zskyline/internal/gen"
	"zskyline/internal/mapreduce"
	"zskyline/internal/point"
	"zskyline/internal/seq"
)

func sameSet(t *testing.T, got, want []point.Point, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d points, want %d", label, len(got), len(want))
	}
	g := append([]point.Point(nil), got...)
	w := append([]point.Point(nil), want...)
	point.SortLexicographic(g)
	point.SortLexicographic(w)
	for i := range g {
		if !g[i].Equal(w[i]) {
			t.Fatalf("%s: [%d] = %v, want %v", label, i, g[i], w[i])
		}
	}
}

func smallCfg() Config {
	cfg := Defaults()
	cfg.M = 8
	cfg.Delta = 3
	cfg.SampleRatio = 0.05
	cfg.Workers = 4
	cfg.Bits = 10
	return cfg
}

func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.M = 0 },
		func(c *Config) { c.Delta = 0 },
		func(c *Config) { c.SampleRatio = 0 },
		func(c *Config) { c.SampleRatio = 1.5 },
		func(c *Config) { c.Bits = 0 },
		func(c *Config) { c.Bits = 99 },
		func(c *Config) { c.Workers = 0 },
	}
	for i, mutate := range bad {
		cfg := Defaults()
		mutate(&cfg)
		if _, err := NewEngine(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if _, err := NewEngine(Defaults()); err != nil {
		t.Errorf("defaults rejected: %v", err)
	}
}

func TestEmptyDataset(t *testing.T) {
	e, err := NewEngine(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	sky, rep, err := e.Skyline(context.Background(), &point.Dataset{Dims: 3})
	if err != nil || len(sky) != 0 || rep == nil {
		t.Fatalf("empty dataset: sky=%v rep=%v err=%v", sky, rep, err)
	}
	sky, _, err = e.Skyline(context.Background(), nil)
	if err != nil || sky != nil {
		t.Fatalf("nil dataset: %v %v", sky, err)
	}
}

// The central correctness property: every strategy x local x merge
// combination computes the exact skyline on every distribution.
func TestAllStrategiesExact(t *testing.T) {
	distributions := []gen.Distribution{gen.Independent, gen.Correlated, gen.AntiCorrelated}
	strategies := []Strategy{Grid, Angle, Random, NaiveZ, ZHG, ZDG}
	for _, dist := range distributions {
		ds := gen.Synthetic(dist, 3000, 4, 42)
		want := seq.SB(ds.Points, nil)
		for _, st := range strategies {
			cfg := smallCfg()
			cfg.Strategy = st
			e, err := NewEngine(cfg)
			if err != nil {
				t.Fatal(err)
			}
			got, rep, err := e.Skyline(context.Background(), ds)
			if err != nil {
				t.Fatalf("%v/%v: %v", dist, st, err)
			}
			sameSet(t, got, want, dist.String()+"/"+st.String())
			if rep.SkylineSize != len(want) {
				t.Errorf("%v/%v: report size %d, want %d", dist, st, rep.SkylineSize, len(want))
			}
		}
	}
}

func TestAllLocalAndMergeAlgosExact(t *testing.T) {
	ds := gen.Synthetic(gen.AntiCorrelated, 2500, 5, 17)
	want := seq.SB(ds.Points, nil)
	for _, local := range []LocalAlgo{SB, ZS} {
		for _, merge := range []MergeAlgo{MergeZM, MergeZS, MergeSB} {
			cfg := smallCfg()
			cfg.Local = local
			cfg.Merge = merge
			e, err := NewEngine(cfg)
			if err != nil {
				t.Fatal(err)
			}
			got, _, err := e.Skyline(context.Background(), ds)
			if err != nil {
				t.Fatalf("%v/%v: %v", local, merge, err)
			}
			sameSet(t, got, want, local.String()+"/"+merge.String())
		}
	}
}

func TestHighDimensionalExact(t *testing.T) {
	// d=10 exercises multi-word Z-addresses in the full pipeline.
	ds := gen.Synthetic(gen.Independent, 1200, 10, 5)
	want := seq.SB(ds.Points, nil)
	cfg := smallCfg()
	cfg.Bits = 8
	e, _ := NewEngine(cfg)
	got, _, err := e.Skyline(context.Background(), ds)
	if err != nil {
		t.Fatal(err)
	}
	sameSet(t, got, want, "d=10")
}

func TestDuplicateHeavyDataExact(t *testing.T) {
	// Integer grid data: massive ties and duplicates.
	ds := gen.Synthetic(gen.Independent, 2000, 3, 7)
	for i, p := range ds.Points {
		for k := range p {
			ds.Points[i][k] = float64(int(p[k]*4)) / 4
		}
	}
	want := seq.BruteForce(ds.Points)
	for _, st := range []Strategy{NaiveZ, ZHG, ZDG} {
		cfg := smallCfg()
		cfg.Strategy = st
		e, _ := NewEngine(cfg)
		got, _, err := e.Skyline(context.Background(), ds)
		if err != nil {
			t.Fatal(err)
		}
		sameSet(t, got, want, "dups/"+st.String())
	}
}

func TestReportFields(t *testing.T) {
	ds := gen.Synthetic(gen.AntiCorrelated, 4000, 4, 9)
	cfg := smallCfg()
	cfg.Strategy = ZDG
	e, _ := NewEngine(cfg)
	_, rep, err := e.Skyline(context.Background(), ds)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SampleSize == 0 || rep.SampleSkySize == 0 {
		t.Errorf("sample fields empty: %+v", rep)
	}
	if rep.Groups < 1 || rep.Partitions < rep.Groups {
		t.Errorf("groups=%d partitions=%d", rep.Groups, rep.Partitions)
	}
	if rep.Candidates == 0 || rep.Candidates < rep.SkylineSize {
		t.Errorf("candidates=%d skyline=%d", rep.Candidates, rep.SkylineSize)
	}
	if rep.Job1 == nil || rep.Job2 == nil {
		t.Fatal("missing job stats")
	}
	if rep.Job1.ShuffleBytes == 0 {
		t.Error("no shuffle bytes in job 1")
	}
	if rep.Total <= 0 || rep.Phase2 <= 0 || rep.Phase3 <= 0 {
		t.Errorf("phase durations: %+v", rep)
	}
	if rep.Tally.DominanceTests == 0 {
		t.Error("no dominance tests tallied")
	}
	if b := rep.CandidateBalance(); b.N != rep.Groups {
		t.Errorf("candidate balance over %d groups, want %d", b.N, rep.Groups)
	}
}

// ZDG must shuffle fewer intermediate records than Grid on correlated
// data (the SZB filter and dominated-partition pruning at work).
func TestZDGPrunesMoreThanGrid(t *testing.T) {
	ds := gen.Synthetic(gen.Correlated, 8000, 5, 21)
	run := func(st Strategy) *Report {
		cfg := smallCfg()
		cfg.Strategy = st
		e, _ := NewEngine(cfg)
		_, rep, err := e.Skyline(context.Background(), ds)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	zdg := run(ZDG)
	grid := run(Grid)
	if zdg.MapperFiltered == 0 {
		t.Error("ZDG filtered nothing on correlated data")
	}
	if zdg.Job1.ShuffleBytes >= grid.Job1.ShuffleBytes {
		t.Errorf("ZDG shuffled %d bytes, grid %d; want less",
			zdg.Job1.ShuffleBytes, grid.Job1.ShuffleBytes)
	}
}

// Candidate counts (Figure 13's pruning-power claim): the grouped
// strategies produce fewer candidates than bare Naive-Z on every
// distribution, because only they run the SZB filter and grouping.
func TestGroupedStrategiesBeatNaiveOnCandidates(t *testing.T) {
	for _, dist := range []gen.Distribution{gen.Independent, gen.Correlated, gen.AntiCorrelated} {
		ds := gen.Synthetic(dist, 8000, 5, 23)
		counts := map[Strategy]int{}
		for _, st := range []Strategy{NaiveZ, ZHG, ZDG} {
			cfg := smallCfg()
			cfg.Strategy = st
			e, _ := NewEngine(cfg)
			_, rep, err := e.Skyline(context.Background(), ds)
			if err != nil {
				t.Fatal(err)
			}
			counts[st] = rep.Candidates
		}
		if counts[ZDG] > counts[NaiveZ] {
			t.Errorf("%v: ZDG candidates %d > Naive-Z %d", dist, counts[ZDG], counts[NaiveZ])
		}
		if counts[ZHG] > counts[NaiveZ] {
			t.Errorf("%v: ZHG candidates %d > Naive-Z %d", dist, counts[ZHG], counts[NaiveZ])
		}
	}
}

// Ablation: disabling the SZB filter must not change the result, only
// the candidate volume.
func TestSZBFilterAblation(t *testing.T) {
	ds := gen.Synthetic(gen.Independent, 4000, 4, 29)
	want := seq.SB(ds.Points, nil)
	cfg := smallCfg()
	cfg.Strategy = ZDG
	cfg.DisableSZBFilter = true
	e, _ := NewEngine(cfg)
	got, repOff, err := e.Skyline(context.Background(), ds)
	if err != nil {
		t.Fatal(err)
	}
	sameSet(t, got, want, "no filter")
	cfg.DisableSZBFilter = false
	e2, _ := NewEngine(cfg)
	_, repOn, err := e2.Skyline(context.Background(), ds)
	if err != nil {
		t.Fatal(err)
	}
	if repOn.Candidates > repOff.Candidates {
		t.Errorf("filter increased candidates: %d with vs %d without",
			repOn.Candidates, repOff.Candidates)
	}
	if repOn.MapperFiltered == 0 {
		t.Error("filter dropped nothing")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	ds := gen.Synthetic(gen.AntiCorrelated, 3000, 4, 31)
	cfg := smallCfg()
	e, _ := NewEngine(cfg)
	first, rep1, err := e.Skyline(context.Background(), ds)
	if err != nil {
		t.Fatal(err)
	}
	second, rep2, err := e.Skyline(context.Background(), ds)
	if err != nil {
		t.Fatal(err)
	}
	sameSet(t, second, first, "rerun")
	if rep1.Candidates != rep2.Candidates || rep1.Groups != rep2.Groups {
		t.Errorf("reports differ: %d/%d vs %d/%d candidates/groups",
			rep1.Candidates, rep1.Groups, rep2.Candidates, rep2.Groups)
	}
}

// The pipeline must survive injected task faults (retries) and still be
// exact.
func TestFaultToleranceExact(t *testing.T) {
	ds := gen.Synthetic(gen.Independent, 2000, 3, 33)
	want := seq.SB(ds.Points, nil)
	// The hook fires concurrently from map-task goroutines.
	var mu sync.Mutex
	failures := map[string]int{}
	cfg := smallCfg()
	cfg.Cluster = mapreduce.NewCluster(mapreduce.ClusterConfig{
		Workers:     4,
		MaxAttempts: 3,
		FailTask: func(job string, kind mapreduce.TaskKind, task, attempt int) error {
			// First attempt of every third task fails.
			if task%3 == 0 && attempt == 1 {
				mu.Lock()
				failures[job]++
				mu.Unlock()
				return context.DeadlineExceeded
			}
			return nil
		},
	})
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := e.Skyline(context.Background(), ds)
	if err != nil {
		t.Fatal(err)
	}
	sameSet(t, got, want, "faulty cluster")
	if len(failures) == 0 {
		t.Error("fault injector never fired")
	}
}

// Straggler injection slows some workers; result must be unchanged.
func TestStragglersExact(t *testing.T) {
	ds := gen.Synthetic(gen.Independent, 1500, 3, 35)
	want := seq.SB(ds.Points, nil)
	cfg := smallCfg()
	cfg.Cluster = mapreduce.NewCluster(mapreduce.ClusterConfig{
		Workers: 4,
		Slowdown: func(worker int) float64 {
			if worker == 0 {
				return 3
			}
			return 1
		},
	})
	e, _ := NewEngine(cfg)
	got, _, err := e.Skyline(context.Background(), ds)
	if err != nil {
		t.Fatal(err)
	}
	sameSet(t, got, want, "stragglers")
}

func TestRealisticSimulatedDatasets(t *testing.T) {
	for _, tc := range []struct {
		name string
		ds   *point.Dataset
	}{
		{"nba", gen.NBALike(350, 1)},
		{"hou", gen.HOULike(500, 1)},
	} {
		want := seq.BruteForce(tc.ds.Points)
		cfg := smallCfg()
		cfg.M = 4
		e, _ := NewEngine(cfg)
		got, _, err := e.Skyline(context.Background(), tc.ds)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		sameSet(t, got, want, tc.name)
	}
}

func TestStringers(t *testing.T) {
	if Grid.String() != "Grid" || ZDG.String() != "ZDG" || Strategy(42).String() == "" {
		t.Error("strategy names")
	}
	if SB.String() != "SB" || ZS.String() != "ZS" {
		t.Error("local algo names")
	}
	if MergeZM.String() != "ZM" || MergeZS.String() != "ZS" || MergeSB.String() != "SB" {
		t.Error("merge algo names")
	}
}

func TestAutoConfig(t *testing.T) {
	// Nil dataset: defaults survive.
	cfg := AutoConfig(nil, 4)
	if cfg.Workers != 4 || cfg.M != 32 {
		t.Errorf("nil dataset config: %+v", cfg)
	}
	// Small 3-d dataset: SB local, small M, dense sample.
	small := gen.Synthetic(gen.Independent, 5000, 3, 1)
	cfg = AutoConfig(small, 8)
	if cfg.Local != SB || cfg.M > 8 || cfg.SampleRatio != 0.05 {
		t.Errorf("small config: %+v", cfg)
	}
	// High-dimensional: ZS local, compact grid.
	high := gen.NUSWideLike(2000, 1)
	cfg = AutoConfig(high, 8)
	if cfg.Local != ZS || cfg.Bits != 8 {
		t.Errorf("high-d config: %+v", cfg)
	}
	// Auto configs must validate and produce exact results.
	ds := gen.Synthetic(gen.AntiCorrelated, 6000, 5, 3)
	eng, err := NewEngine(AutoConfig(ds, 4))
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := eng.Skyline(context.Background(), ds)
	if err != nil {
		t.Fatal(err)
	}
	sameSet(t, got, seq.SB(ds.Points, nil), "auto")
}

func TestEngineContextCancellation(t *testing.T) {
	ds := gen.Synthetic(gen.Independent, 50000, 5, 7)
	cfg := smallCfg()
	cfg.Workers = 1
	cfg.MapSplits = 64
	e, _ := NewEngine(cfg)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before start: must fail fast, not hang
	_, _, err := e.Skyline(ctx, ds)
	if err == nil {
		t.Fatal("cancelled context produced a result")
	}
}

// quick property: random (strategy, algo, M, delta, bits, ratio)
// configurations all compute the exact skyline.
func TestQuickRandomConfigsExact(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		cfg := Defaults()
		cfg.Strategy = []Strategy{Grid, Angle, Random, NaiveZ, ZHG, ZDG}[r.Intn(6)]
		cfg.Local = []LocalAlgo{SB, ZS}[r.Intn(2)]
		cfg.Merge = []MergeAlgo{MergeZM, MergeZS, MergeSB}[r.Intn(3)]
		cfg.M = 1 + r.Intn(16)
		cfg.Delta = 1 + r.Intn(5)
		cfg.Bits = 2 + r.Intn(18)
		cfg.SampleRatio = 0.02 + r.Float64()*0.2
		cfg.Workers = 1 + r.Intn(6)
		cfg.Fanout = 2 + r.Intn(30)
		d := 1 + r.Intn(5)
		n := 50 + r.Intn(1200)
		ds := gen.Synthetic(gen.Distribution(r.Intn(3)), n, d, seed)
		eng, err := NewEngine(cfg)
		if err != nil {
			return false
		}
		got, _, err := eng.Skyline(context.Background(), ds)
		if err != nil {
			return false
		}
		want := seq.BruteForce(ds.Points)
		if len(got) != len(want) {
			t.Logf("seed %d cfg %+v: got %d want %d", seed, cfg, len(got), len(want))
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
