// Package core runs the paper's three-phase parallel skyline pipeline
// (Figure 5) on the in-process MapReduce simulator. The phase logic
// itself — rule learning, mapper filter/routing, local skylines, and
// candidate merging — lives once in internal/plan; core contributes
// the executor that schedules those phases as simulator jobs:
//
//	Phase 1  (§5.1)  master-side preprocessing: reservoir sample, learn
//	                 the partitioning rule (Grid / Angle / Random /
//	                 Naive-Z / ZHG / ZDG), compute the sample skyline
//	                 and its ZB-tree (the SZB-tree).
//	Phase 2  (§5.2)  MapReduce job 1: mappers filter points against the
//	                 SZB-tree and route them partition->group;
//	                 combiners and reducers run a local skyline
//	                 algorithm (SB or ZS) per group, emitting skyline
//	                 candidates.
//	Phase 3  (§5.3)  MapReduce job 2: merge candidates with Z-merge
//	                 (ZM), or with the SB / ZS baselines the evaluation
//	                 compares against.
//
// The Engine is the library's primary public entry point (re-exported
// by the root zskyline package).
package core

import (
	"context"
	"fmt"
	"time"

	"zskyline/internal/dominance"
	"zskyline/internal/mapreduce"
	"zskyline/internal/metrics"
	"zskyline/internal/plan"
	"zskyline/internal/point"
	"zskyline/internal/zbtree"
)

// Strategy selects the partitioning/grouping scheme of phase 1.
type Strategy = plan.Strategy

// The partitioning strategies of the paper's evaluation (§6.1).
const (
	// Grid is classic equal-width grid partitioning [9][11].
	Grid = plan.Grid
	// Angle is angle-based partitioning [8].
	Angle = plan.Angle
	// Random is hash partitioning [18].
	Random = plan.Random
	// NaiveZ is plain Z-order equal-frequency partitioning (§4.1).
	NaiveZ = plan.NaiveZ
	// ZHG is Z-order partitioning plus Heuristic Grouping (§4.2).
	ZHG = plan.ZHG
	// ZDG is Z-order partitioning plus Dominance-based Grouping (§4.3),
	// the paper's headline strategy.
	ZDG = plan.ZDG
)

// LocalAlgo selects the per-group skyline algorithm of phase 2.
type LocalAlgo = plan.LocalAlgo

// Local skyline algorithms (§6.1).
const (
	// SB sorts by coordinate sum then filters (block-nested-loops).
	SB = plan.SB
	// ZS is Z-search over a ZB-tree, the state of the art.
	ZS = plan.ZS
)

// MergeAlgo selects the phase-3 candidate merging algorithm.
type MergeAlgo = plan.MergeAlgo

// Merge algorithms compared in §6.3.
const (
	// MergeZM is the paper's Z-merge (Algorithm 4).
	MergeZM = plan.MergeZM
	// MergeZS recomputes the skyline of all candidates with Z-search.
	MergeZS = plan.MergeZS
	// MergeSB recomputes it with the sort-based filter.
	MergeSB = plan.MergeSB
)

// Config parameterizes an Engine. The zero value is not valid; use
// Defaults() or fill the fields explicitly.
type Config struct {
	// Strategy is the phase-1 partitioning scheme.
	Strategy Strategy
	// Local is the per-group skyline algorithm of phase 2.
	Local LocalAlgo
	// Merge is the phase-3 candidate merging algorithm.
	Merge MergeAlgo
	// M is the target number of groups (the paper's M); also the grid /
	// angle / random partition count for the baselines.
	M int
	// Delta is the partition expansion factor delta >= 1: Z-order
	// strategies first cut the curve into M*Delta partitions (§4.2).
	Delta int
	// SampleRatio is the reservoir sampling ratio of phase 1 (§6.6
	// varies it between 0.005 and 0.04).
	SampleRatio float64
	// Bits is the Z-order grid resolution per dimension.
	Bits int
	// Fanout is the ZB-tree node capacity.
	Fanout int
	// Workers is the simulated cluster's concurrent task slots.
	Workers int
	// MapSplits is the number of map tasks; 0 selects 2x workers.
	MapSplits int
	// Seed drives sampling (and nothing else; the pipeline is
	// deterministic given data and seed).
	Seed int64
	// Cluster optionally supplies a prebuilt cluster (for straggler or
	// fault injection); nil builds a plain one from Workers.
	Cluster *mapreduce.Cluster
	// DisableSZBFilter turns off the Algorithm 3 mapper filter against
	// the sample-skyline ZB-tree. Used by the ablation experiments to
	// quantify the filter's contribution; leave false for normal runs.
	DisableSZBFilter bool
	// Dominance selects the dominance relation the pipeline computes
	// under (see internal/dominance); the zero value is classic Pareto
	// dominance.
	Dominance dominance.Descriptor
}

// Defaults returns the configuration used throughout the experiments:
// ZDG + ZS + ZM, M=32 groups, delta=4, 2% sample, 16-bit grids.
func Defaults() Config {
	return Config{
		Strategy:    ZDG,
		Local:       ZS,
		Merge:       MergeZM,
		M:           32,
		Delta:       4,
		SampleRatio: 0.02,
		Bits:        16,
		Fanout:      zbtree.DefaultFanout,
		Workers:     8,
	}
}

// spec lowers the config to the backend-agnostic plan parameters.
func (c *Config) spec() *plan.Spec {
	return &plan.Spec{
		Strategy:         c.Strategy,
		Local:            c.Local,
		Merge:            c.Merge,
		M:                c.M,
		Delta:            c.Delta,
		SampleRatio:      c.SampleRatio,
		Bits:             c.Bits,
		Fanout:           c.Fanout,
		Seed:             c.Seed,
		DisableSZBFilter: c.DisableSZBFilter,
		MapTasks:         c.splits(),
		Dominance:        c.Dominance,
	}
}

// splits resolves the map task count (0 selects 2x workers).
func (c *Config) splits() int {
	if c.MapSplits > 0 {
		return c.MapSplits
	}
	return 2 * c.Workers
}

func (c *Config) validate() error {
	if err := c.spec().Validate(); err != nil {
		return err
	}
	if c.Workers < 1 {
		return fmt.Errorf("core: Workers must be >= 1, got %d", c.Workers)
	}
	return nil
}

// Report describes one pipeline run: the numbers the paper's
// evaluation plots.
type Report struct {
	Strategy Strategy
	Local    LocalAlgo
	Merge    MergeAlgo

	// Phase wall-clock durations.
	Preprocess time.Duration
	Phase2     time.Duration
	Phase3     time.Duration
	Total      time.Duration

	// SampleSize is the number of sampled points; SampleSkySize the
	// size of the sample skyline loaded into every mapper.
	SampleSize    int
	SampleSkySize int

	// Groups is the number of groups (= phase-2 reducers); Partitions
	// the number of Z-partitions before grouping; PrunedPartitions how
	// many were dropped as fully dominated.
	Groups           int
	Partitions       int
	PrunedPartitions int

	// MapperFiltered counts input points dropped by the SZB-tree filter
	// or by pruned partitions before the shuffle.
	MapperFiltered int64
	// Candidates is the phase-2 output size (the paper's "number of
	// skyline candidates", Figure 9).
	Candidates int
	// PerGroupCandidates are the candidate counts per group.
	PerGroupCandidates []int
	// SkylineSize is |S|.
	SkylineSize int

	// Job1 and Job2 are the MapReduce-level statistics.
	Job1, Job2 *mapreduce.JobStats
	// Tally aggregates dominance tests, region tests, shuffle bytes.
	Tally metrics.Snapshot
}

// CandidateBalance summarizes the spread of candidates across groups —
// the straggler metric for phase 3.
func (r *Report) CandidateBalance() metrics.Balance {
	return metrics.NewBalance(r.PerGroupCandidates)
}

// Engine executes the three-phase pipeline.
type Engine struct {
	cfg     Config
	cluster *mapreduce.Cluster
}

// NewEngine validates cfg and builds an engine.
func NewEngine(cfg Config) (*Engine, error) {
	if cfg.Fanout <= 0 {
		cfg.Fanout = zbtree.DefaultFanout
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	cl := cfg.Cluster
	if cl == nil {
		cl = mapreduce.NewCluster(mapreduce.ClusterConfig{Workers: cfg.Workers})
	}
	return &Engine{cfg: cfg, cluster: cl}, nil
}

// Skyline computes the exact skyline of ds with the configured
// strategy and returns it with a full Report.
func (e *Engine) Skyline(ctx context.Context, ds *point.Dataset) ([]point.Point, *Report, error) {
	if ds == nil || ds.Len() == 0 {
		return nil, &Report{Strategy: e.cfg.Strategy, Local: e.cfg.Local, Merge: e.cfg.Merge}, nil
	}
	tally := &metrics.Tally{}
	ex := &mrExec{
		LocalExec: plan.NewLocalExec(e.cfg.Workers),
		cluster:   e.cluster,
		splits:    e.cfg.splits(),
		dims:      ds.Dims,
	}
	sky, prep, err := plan.Run(ctx, e.cfg.spec(), ds, ex, tally)
	if err != nil {
		return nil, nil, err
	}
	rep := &Report{
		Strategy:           e.cfg.Strategy,
		Local:              e.cfg.Local,
		Merge:              e.cfg.Merge,
		Preprocess:         prep.Preprocess,
		Phase2:             prep.Phase2,
		Phase3:             prep.Phase3,
		Total:              prep.Total,
		SampleSize:         prep.SampleSize,
		SampleSkySize:      prep.SampleSkySize,
		Groups:             prep.Groups,
		Partitions:         prep.Partitions,
		PrunedPartitions:   prep.PrunedPartitions,
		MapperFiltered:     prep.Filtered,
		Candidates:         prep.Candidates,
		PerGroupCandidates: prep.PerGroupCandidates,
		SkylineSize:        prep.SkylineSize,
		Job1:               ex.job1,
		Job2:               ex.job2,
		Tally:              tally.Snapshot(),
	}
	if rep.Job2 == nil {
		// Phase 3 never scheduled a job (no candidates survived).
		rep.Job2 = &mapreduce.JobStats{Name: "skyline-merge"}
	}
	return sky, rep, nil
}
