// Package core wires the paper's three-phase parallel skyline pipeline
// (Figure 5) on top of the library's substrates:
//
//	Phase 1  (§5.1)  master-side preprocessing: reservoir sample, learn
//	                 the partitioning rule (Grid / Angle / Random /
//	                 Naive-Z / ZHG / ZDG), compute the sample skyline
//	                 and its ZB-tree (the SZB-tree).
//	Phase 2  (§5.2)  MapReduce job 1: mappers filter points against the
//	                 SZB-tree and route them partition->group;
//	                 combiners and reducers run a local skyline
//	                 algorithm (SB or ZS) per group, emitting skyline
//	                 candidates.
//	Phase 3  (§5.3)  MapReduce job 2: merge candidates with Z-merge
//	                 (ZM), or with the SB / ZS baselines the evaluation
//	                 compares against.
//
// The Engine is the library's primary public entry point (re-exported
// by the root zskyline package).
package core

import (
	"context"
	"fmt"
	"time"

	"zskyline/internal/grouping"
	"zskyline/internal/mapreduce"
	"zskyline/internal/metrics"
	"zskyline/internal/partition"
	"zskyline/internal/point"
	"zskyline/internal/sample"
	"zskyline/internal/seq"
	"zskyline/internal/zbtree"
	"zskyline/internal/zorder"
)

// Strategy selects the partitioning/grouping scheme of phase 1.
type Strategy int

// The partitioning strategies of the paper's evaluation (§6.1).
const (
	// Grid is classic equal-width grid partitioning [9][11].
	Grid Strategy = iota
	// Angle is angle-based partitioning [8].
	Angle
	// Random is hash partitioning [18].
	Random
	// NaiveZ is plain Z-order equal-frequency partitioning (§4.1).
	NaiveZ
	// ZHG is Z-order partitioning plus Heuristic Grouping (§4.2).
	ZHG
	// ZDG is Z-order partitioning plus Dominance-based Grouping (§4.3),
	// the paper's headline strategy.
	ZDG
)

// String names the strategy as the paper does.
func (s Strategy) String() string {
	switch s {
	case Grid:
		return "Grid"
	case Angle:
		return "Angle"
	case Random:
		return "Random"
	case NaiveZ:
		return "Naive-Z"
	case ZHG:
		return "ZHG"
	case ZDG:
		return "ZDG"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// usesZOrder reports whether the strategy routes by Z-address and may
// apply the SZB-tree mapper filter of Algorithm 3.
func (s Strategy) usesZOrder() bool { return s == NaiveZ || s == ZHG || s == ZDG }

// LocalAlgo selects the per-group skyline algorithm of phase 2.
type LocalAlgo int

// Local skyline algorithms (§6.1).
const (
	// SB sorts by coordinate sum then filters (block-nested-loops).
	SB LocalAlgo = iota
	// ZS is Z-search over a ZB-tree, the state of the art.
	ZS
)

// String names the local algorithm.
func (a LocalAlgo) String() string {
	if a == SB {
		return "SB"
	}
	return "ZS"
}

// MergeAlgo selects the phase-3 candidate merging algorithm.
type MergeAlgo int

// Merge algorithms compared in §6.3.
const (
	// MergeZM is the paper's Z-merge (Algorithm 4).
	MergeZM MergeAlgo = iota
	// MergeZS recomputes the skyline of all candidates with Z-search.
	MergeZS
	// MergeSB recomputes it with the sort-based filter.
	MergeSB
)

// String names the merge algorithm.
func (a MergeAlgo) String() string {
	switch a {
	case MergeZM:
		return "ZM"
	case MergeZS:
		return "ZS"
	default:
		return "SB"
	}
}

// Config parameterizes an Engine. The zero value is not valid; use
// Defaults() or fill the fields explicitly.
type Config struct {
	// Strategy is the phase-1 partitioning scheme.
	Strategy Strategy
	// Local is the per-group skyline algorithm of phase 2.
	Local LocalAlgo
	// Merge is the phase-3 candidate merging algorithm.
	Merge MergeAlgo
	// M is the target number of groups (the paper's M); also the grid /
	// angle / random partition count for the baselines.
	M int
	// Delta is the partition expansion factor delta >= 1: Z-order
	// strategies first cut the curve into M*Delta partitions (§4.2).
	Delta int
	// SampleRatio is the reservoir sampling ratio of phase 1 (§6.6
	// varies it between 0.005 and 0.04).
	SampleRatio float64
	// Bits is the Z-order grid resolution per dimension.
	Bits int
	// Fanout is the ZB-tree node capacity.
	Fanout int
	// Workers is the simulated cluster's concurrent task slots.
	Workers int
	// MapSplits is the number of map tasks; 0 selects 2x workers.
	MapSplits int
	// Seed drives sampling (and nothing else; the pipeline is
	// deterministic given data and seed).
	Seed int64
	// Cluster optionally supplies a prebuilt cluster (for straggler or
	// fault injection); nil builds a plain one from Workers.
	Cluster *mapreduce.Cluster
	// DisableSZBFilter turns off the Algorithm 3 mapper filter against
	// the sample-skyline ZB-tree. Used by the ablation experiments to
	// quantify the filter's contribution; leave false for normal runs.
	DisableSZBFilter bool
}

// Defaults returns the configuration used throughout the experiments:
// ZDG + ZS + ZM, M=32 groups, delta=4, 2% sample, 16-bit grids.
func Defaults() Config {
	return Config{
		Strategy:    ZDG,
		Local:       ZS,
		Merge:       MergeZM,
		M:           32,
		Delta:       4,
		SampleRatio: 0.02,
		Bits:        16,
		Fanout:      zbtree.DefaultFanout,
		Workers:     8,
	}
}

func (c *Config) validate() error {
	if c.M < 1 {
		return fmt.Errorf("core: M must be >= 1, got %d", c.M)
	}
	if c.Delta < 1 {
		return fmt.Errorf("core: Delta must be >= 1, got %d", c.Delta)
	}
	if c.SampleRatio <= 0 || c.SampleRatio > 1 {
		return fmt.Errorf("core: SampleRatio must be in (0,1], got %v", c.SampleRatio)
	}
	if c.Bits < 1 || c.Bits > zorder.MaxBits {
		return fmt.Errorf("core: Bits must be in [1,%d], got %d", zorder.MaxBits, c.Bits)
	}
	if c.Workers < 1 {
		return fmt.Errorf("core: Workers must be >= 1, got %d", c.Workers)
	}
	return nil
}

// Report describes one pipeline run: the numbers the paper's
// evaluation plots.
type Report struct {
	Strategy Strategy
	Local    LocalAlgo
	Merge    MergeAlgo

	// Phase wall-clock durations.
	Preprocess time.Duration
	Phase2     time.Duration
	Phase3     time.Duration
	Total      time.Duration

	// SampleSize is the number of sampled points; SampleSkySize the
	// size of the sample skyline loaded into every mapper.
	SampleSize    int
	SampleSkySize int

	// Groups is the number of groups (= phase-2 reducers); Partitions
	// the number of Z-partitions before grouping; PrunedPartitions how
	// many were dropped as fully dominated.
	Groups           int
	Partitions       int
	PrunedPartitions int

	// MapperFiltered counts input points dropped by the SZB-tree filter
	// or by pruned partitions before the shuffle.
	MapperFiltered int64
	// Candidates is the phase-2 output size (the paper's "number of
	// skyline candidates", Figure 9).
	Candidates int
	// PerGroupCandidates are the candidate counts per group.
	PerGroupCandidates []int
	// SkylineSize is |S|.
	SkylineSize int

	// Job1 and Job2 are the MapReduce-level statistics.
	Job1, Job2 *mapreduce.JobStats
	// Tally aggregates dominance tests, region tests, shuffle bytes.
	Tally metrics.Snapshot
}

// CandidateBalance summarizes the spread of candidates across groups —
// the straggler metric for phase 3.
func (r *Report) CandidateBalance() metrics.Balance {
	return metrics.NewBalance(r.PerGroupCandidates)
}

// Engine executes the three-phase pipeline.
type Engine struct {
	cfg     Config
	cluster *mapreduce.Cluster
}

// NewEngine validates cfg and builds an engine.
func NewEngine(cfg Config) (*Engine, error) {
	if cfg.Fanout <= 0 {
		cfg.Fanout = zbtree.DefaultFanout
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	cl := cfg.Cluster
	if cl == nil {
		cl = mapreduce.NewCluster(mapreduce.ClusterConfig{Workers: cfg.Workers})
	}
	return &Engine{cfg: cfg, cluster: cl}, nil
}

// candidate is a phase-2 output record.
type candidate struct {
	gid int
	p   point.Point
}

// rule is the learned phase-1 routing rule: point -> group, or drop.
type rule struct {
	assign func(p point.Point) (gid int, ok bool)
	// route, when non-nil, replaces assign for Z-order strategies: it
	// receives the point's precomputed ZB-tree entry so the mapper
	// encodes each point exactly once for both the SZB filter and the
	// partition search.
	route   func(e zbtree.Entry) (gid int, ok bool)
	szb     *zbtree.Tree // nil when the strategy does not filter
	enc     *zorder.Encoder
	groups  int
	parts   int
	pruned  int
	skySize int
}

// Skyline computes the exact skyline of ds with the configured
// strategy and returns it with a full Report.
func (e *Engine) Skyline(ctx context.Context, ds *point.Dataset) ([]point.Point, *Report, error) {
	if ds == nil || ds.Len() == 0 {
		return nil, &Report{Strategy: e.cfg.Strategy, Local: e.cfg.Local, Merge: e.cfg.Merge}, nil
	}
	tally := &metrics.Tally{}
	rep := &Report{Strategy: e.cfg.Strategy, Local: e.cfg.Local, Merge: e.cfg.Merge}
	total := time.Now()

	// ---- Phase 1: preprocessing on the master ----
	t0 := time.Now()
	smp, err := sample.Ratio(ds.Points, e.cfg.SampleRatio, e.cfg.Seed)
	if err != nil {
		return nil, nil, err
	}
	rep.SampleSize = len(smp)
	mins, maxs, err := ds.Bounds()
	if err != nil {
		return nil, nil, err
	}
	enc, err := zorder.NewEncoder(ds.Dims, e.cfg.Bits, mins, maxs)
	if err != nil {
		return nil, nil, err
	}
	rt, err := e.learnRule(enc, smp, tally)
	if err != nil {
		return nil, nil, err
	}
	rep.Preprocess = time.Since(t0)
	rep.Groups = rt.groups
	rep.Partitions = rt.parts
	rep.PrunedPartitions = rt.pruned
	rep.SampleSkySize = rt.skySize

	// ---- Phase 2: compute skyline candidates ----
	t1 := time.Now()
	cands, job1, filtered, err := e.phase2(ctx, ds, rt, tally)
	if err != nil {
		return nil, nil, err
	}
	rep.Phase2 = time.Since(t1)
	rep.Job1 = job1
	rep.MapperFiltered = filtered
	rep.Candidates = len(cands)
	perGroup := make([]int, rt.groups)
	for _, c := range cands {
		if c.gid >= 0 && c.gid < rt.groups {
			perGroup[c.gid]++
		}
	}
	rep.PerGroupCandidates = perGroup

	// ---- Phase 3: merge skyline candidates ----
	t2 := time.Now()
	sky, job2, err := e.phase3(ctx, enc, cands, tally)
	if err != nil {
		return nil, nil, err
	}
	rep.Phase3 = time.Since(t2)
	rep.Job2 = job2
	rep.SkylineSize = len(sky)
	rep.Total = time.Since(total)
	rep.Tally = tally.Snapshot()
	return sky, rep, nil
}

// learnRule builds the routing rule for the configured strategy.
func (e *Engine) learnRule(enc *zorder.Encoder, smp []point.Point, tally *metrics.Tally) (*rule, error) {
	cfg := e.cfg
	switch cfg.Strategy {
	case Grid:
		g, err := partition.NewGrid(smp, cfg.M)
		if err != nil {
			return nil, err
		}
		return &rule{assign: func(p point.Point) (int, bool) { return g.Assign(p), true },
			groups: g.N(), parts: g.N()}, nil
	case Angle:
		a, err := partition.NewAngle(smp, cfg.M)
		if err != nil {
			return nil, err
		}
		return &rule{assign: func(p point.Point) (int, bool) { return a.Assign(p), true },
			groups: a.N(), parts: a.N()}, nil
	case Random:
		r, err := partition.NewRandom(cfg.M)
		if err != nil {
			return nil, err
		}
		return &rule{assign: func(p point.Point) (int, bool) { return r.Assign(p), true },
			groups: r.N(), parts: r.N()}, nil
	}

	// Z-order strategies.
	parts := cfg.M
	if cfg.Strategy != NaiveZ {
		parts = cfg.M * cfg.Delta
	}
	zc, err := partition.NewZCurve(enc, smp, parts)
	if err != nil {
		return nil, err
	}
	skyPts := zbtree.ZSearch(enc, cfg.Fanout, smp, tally)
	// Naive-Z is the bare §4.1 partitioner: pivots only, no sample
	// skyline broadcast, no grouping. Only the grouped strategies run
	// Algorithm 3's SZB-tree mapper filter.
	var szb *zbtree.Tree
	if cfg.Strategy != NaiveZ {
		szb = zbtree.BuildFromPoints(enc, cfg.Fanout, skyPts, tally)
	}

	var pg *grouping.PGMap
	switch cfg.Strategy {
	case NaiveZ:
		pg = grouping.Identity(zc.Infos())
	case ZHG:
		scons := len(skyPts) / cfg.M
		if scons < 1 {
			scons = 1
		}
		zc = zc.Redistribute(smp, scons)
		pg, err = grouping.Heuristic(zc.Infos(), cfg.M)
	case ZDG:
		scons := len(skyPts) / cfg.M
		if scons < 1 {
			scons = 1
		}
		zc = zc.Redistribute(smp, scons)
		pg, err = grouping.Dominance(enc, zc.Infos(), cfg.M)
	default:
		return nil, fmt.Errorf("core: unknown strategy %v", cfg.Strategy)
	}
	if err != nil {
		return nil, err
	}
	return &rule{
		assign: func(p point.Point) (int, bool) {
			return pg.GroupOf(zc.Assign(p))
		},
		route: func(e zbtree.Entry) (int, bool) {
			return pg.GroupOf(zc.AssignAddr(e.Z))
		},
		szb:     szb,
		enc:     enc,
		groups:  pg.Groups,
		parts:   zc.N(),
		pruned:  len(pg.Pruned),
		skySize: len(skyPts),
	}, nil
}

// localSkyline runs the configured local algorithm.
func (e *Engine) localSkyline(enc *zorder.Encoder, pts []point.Point, tally *metrics.Tally) []point.Point {
	if e.cfg.Local == ZS {
		return zbtree.ZSearch(enc, e.cfg.Fanout, pts, tally)
	}
	return seq.SB(pts, tally)
}

// phase2 runs MapReduce job 1 (Algorithm 3).
func (e *Engine) phase2(ctx context.Context, ds *point.Dataset, rt *rule, tally *metrics.Tally) ([]candidate, *mapreduce.JobStats, int64, error) {
	lenc := encOr(rt.encoderOrNil(), e, ds)
	var filtered metrics.Tally
	dims := ds.Dims
	job := mapreduce.Job[point.Point, int, point.Point, candidate]{
		Name: "skyline-candidates",
		Map: func(_ *mapreduce.TaskContext, p point.Point, emit func(int, point.Point)) error {
			var gid int
			var ok bool
			if rt.route != nil {
				// One encode serves both the SZB filter and routing.
				en := zbtree.NewEntry(rt.enc, p)
				if rt.szb != nil && !e.cfg.DisableSZBFilter && rt.szb.DominatesPoint(en.G, en.P) {
					filtered.AddPointsPruned(1)
					return nil
				}
				gid, ok = rt.route(en)
			} else {
				gid, ok = rt.assign(p)
			}
			if !ok {
				filtered.AddPointsPruned(1)
				return nil
			}
			emit(gid, p)
			return nil
		},
		Combine: func(_ *mapreduce.TaskContext, _ int, vals []point.Point) []point.Point {
			return e.localSkyline(lenc, vals, tally)
		},
		Reduce: func(_ *mapreduce.TaskContext, gid int, vals []point.Point, emit func(candidate)) error {
			for _, p := range e.localSkyline(lenc, vals, tally) {
				emit(candidate{gid: gid, p: p})
			}
			return nil
		},
		Partition: func(gid, n int) int { return gid % n },
		Reducers:  rt.groups,
		SizeOf:    func(_ int, _ point.Point) int { return 8*dims + 8 },
		Tally:     tally,
	}
	splits := e.cfg.MapSplits
	if splits <= 0 {
		splits = 2 * e.cfg.Workers
	}
	out, stats, err := mapreduce.Run(ctx, e.cluster, job, mapreduce.SplitSlice(ds.Points, splits))
	if err != nil {
		return nil, nil, 0, err
	}
	tally.AddPointsPruned(filtered.Snapshot().PointsPruned)
	return out, stats, filtered.Snapshot().PointsPruned, nil
}

// encoderOrNil returns the rule's Z-order encoder when present.
func (r *rule) encoderOrNil() *zorder.Encoder { return r.enc }

// encOr falls back to a lazily built unit encoder when the strategy
// has no Z-order encoder but the local algorithm is ZS.
func encOr(enc *zorder.Encoder, e *Engine, ds *point.Dataset) *zorder.Encoder {
	if enc != nil {
		return enc
	}
	// Cheap to construct; bounds [0,1] are where gen data lives. Exact
	// correctness does not depend on bounds (clamping only weakens
	// pruning), so the unit box is a safe default here.
	u, err := zorder.NewUnitEncoder(ds.Dims, e.cfg.Bits)
	if err != nil {
		panic(err)
	}
	return u
}

// phase3 runs MapReduce job 2: merge candidates (§5.3).
func (e *Engine) phase3(ctx context.Context, enc *zorder.Encoder, cands []candidate, tally *metrics.Tally) ([]point.Point, *mapreduce.JobStats, error) {
	if len(cands) == 0 {
		return nil, &mapreduce.JobStats{Name: "skyline-merge"}, nil
	}
	dims := len(cands[0].p)
	fanout := e.cfg.Fanout
	mergeAlgo := e.cfg.Merge
	job := mapreduce.Job[candidate, int, candidate, point.Point]{
		Name: "skyline-merge",
		Map: func(_ *mapreduce.TaskContext, c candidate, emit func(int, candidate)) error {
			emit(0, c)
			return nil
		},
		Reduce: func(_ *mapreduce.TaskContext, _ int, vals []candidate, emit func(point.Point)) error {
			var sky []point.Point
			switch mergeAlgo {
			case MergeZM:
				// One candidate ZB-tree per group, then Z-merge.
				byGroup := map[int][]point.Point{}
				var order []int
				for _, c := range vals {
					if _, ok := byGroup[c.gid]; !ok {
						order = append(order, c.gid)
					}
					byGroup[c.gid] = append(byGroup[c.gid], c.p)
				}
				trees := make([]*zbtree.Tree, 0, len(order))
				for _, gid := range order {
					trees = append(trees, zbtree.BuildFromPoints(enc, fanout, byGroup[gid], tally))
				}
				sky = zbtree.MergeAll(enc, fanout, trees, tally).Points()
			case MergeZS:
				all := make([]point.Point, len(vals))
				for i, c := range vals {
					all[i] = c.p
				}
				sky = zbtree.ZSearch(enc, fanout, all, tally)
			default: // MergeSB
				all := make([]point.Point, len(vals))
				for i, c := range vals {
					all[i] = c.p
				}
				sky = seq.SB(all, tally)
			}
			for _, p := range sky {
				emit(p)
			}
			return nil
		},
		Partition: func(_, _ int) int { return 0 },
		Reducers:  1,
		SizeOf:    func(_ int, _ candidate) int { return 8*dims + 16 },
		Tally:     tally,
	}
	splits := e.cfg.MapSplits
	if splits <= 0 {
		splits = 2 * e.cfg.Workers
	}
	return runPhase3(ctx, e.cluster, job, cands, splits)
}

func runPhase3(ctx context.Context, cl *mapreduce.Cluster,
	job mapreduce.Job[candidate, int, candidate, point.Point],
	cands []candidate, splits int,
) ([]point.Point, *mapreduce.JobStats, error) {
	return mapreduce.Run(ctx, cl, job, mapreduce.SplitSlice(cands, splits))
}
