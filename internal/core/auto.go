package core

import (
	"zskyline/internal/estimate"
	"zskyline/internal/point"
)

// AutoConfig derives a pipeline configuration from the dataset's shape
// — the choices a downstream user would otherwise tune by hand:
//
//   - group count M scales with the data per worker, bounded so each
//     group holds enough points to be worth a reducer;
//   - the Z-grid resolution shrinks as dimensionality grows (address
//     width is d*bits);
//   - the sampling ratio grows for small inputs so the learned pivots
//     stay meaningful;
//   - the local algorithm follows the paper's finding: Z-search pays
//     off for d >= 7, the sort-based filter wins below;
//   - the partition expansion factor delta backs off when the expected
//     skyline is tiny (correlated-like data needs no fine splitting).
func AutoConfig(ds *point.Dataset, workers int) Config {
	cfg := Defaults()
	if workers > 0 {
		cfg.Workers = workers
	}
	if ds == nil || ds.Len() == 0 {
		return cfg
	}
	n, d := ds.Len(), ds.Dims

	// Groups: ~2 per worker slot, capped so a group keeps >= 1000
	// points, floored at 4.
	m := 2 * cfg.Workers
	if max := n / 1000; m > max {
		m = max
	}
	if m < 4 {
		m = 4
	}
	cfg.M = m

	// Grid resolution by dimensionality.
	switch {
	case d <= 16:
		cfg.Bits = 16
	case d <= 64:
		cfg.Bits = 12
	default:
		cfg.Bits = 8
	}

	// Sampling: small inputs need denser samples for stable pivots.
	switch {
	case n <= 20000:
		cfg.SampleRatio = 0.05
	case n <= 200000:
		cfg.SampleRatio = 0.02
	default:
		cfg.SampleRatio = 0.01
	}

	// Local algorithm per the paper's crossover (§6.2).
	if d >= 7 {
		cfg.Local = ZS
	} else {
		cfg.Local = SB
	}

	// Expected skyline size tunes delta: when the whole skyline fits in
	// a couple of groups there is nothing for redistribution to spread.
	if est := estimate.Independent(n, d); est < float64(2*cfg.M) {
		cfg.Delta = 1
	}
	return cfg
}
