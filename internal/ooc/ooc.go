// Package ooc computes skylines out of core: datasets stored in the
// ZSKY binary format are streamed in bounded batches through the
// incremental maintainer, so memory use tracks the skyline size plus
// one batch rather than the dataset size. This is how the library
// handles files larger than RAM — the same regime the paper's
// disk-backed Hadoop deployment targets.
package ooc

import (
	"fmt"
	"io"
	"os"

	"zskyline/internal/codec"
	"zskyline/internal/maintain"
	"zskyline/internal/point"
)

// Options tunes a streaming run.
type Options struct {
	// BatchSize bounds points in memory per step; 0 selects 65536.
	BatchSize int
	// Bits is the maintainer's grid resolution; 0 selects 16.
	Bits int
	// Mins/Maxs optionally give the data's bounding box. When nil, a
	// first streaming pass computes it (two-pass mode).
	Mins, Maxs []float64
}

// SkylineReader computes the skyline of a ZSKY stream. When no bounds
// are supplied the source must be re-readable (use SkylineFile for
// files); a one-pass run over an io.Reader requires bounds.
func SkylineReader(r io.Reader, opts Options) ([]point.Point, error) {
	if opts.Mins == nil || opts.Maxs == nil {
		return nil, fmt.Errorf("ooc: one-pass streaming needs explicit bounds; use SkylineFile for two-pass")
	}
	br, err := codec.NewBinaryReader(r)
	if err != nil {
		return nil, err
	}
	return streamSkyline(br, opts)
}

// SkylineFile computes the skyline of a ZSKY file. Without explicit
// bounds it makes two passes: one to find the bounding box (needed for
// a well-fitted Z-order grid), one to maintain the skyline.
func SkylineFile(path string, opts Options) ([]point.Point, error) {
	if opts.Mins == nil || opts.Maxs == nil {
		mins, maxs, err := scanBounds(path, opts)
		if err != nil {
			return nil, err
		}
		opts.Mins, opts.Maxs = mins, maxs
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br, err := codec.NewBinaryReader(f)
	if err != nil {
		return nil, err
	}
	return streamSkyline(br, opts)
}

func (o Options) normalize() Options {
	if o.BatchSize < 1 {
		o.BatchSize = 65536
	}
	if o.Bits < 1 {
		o.Bits = 16
	}
	return o
}

func scanBounds(path string, opts Options) ([]float64, []float64, error) {
	opts = opts.normalize()
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	br, err := codec.NewBinaryReader(f)
	if err != nil {
		return nil, nil, err
	}
	var mins, maxs []float64
	for {
		batch, err := br.NextBlock(opts.BatchSize)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, nil, err
		}
		mins, maxs = batch.UpdateBounds(mins, maxs)
	}
	if mins == nil {
		return nil, nil, fmt.Errorf("ooc: empty file")
	}
	return mins, maxs, nil
}

func streamSkyline(br *codec.BinaryReader, opts Options) ([]point.Point, error) {
	opts = opts.normalize()
	if len(opts.Mins) != br.Dims() || len(opts.Maxs) != br.Dims() {
		return nil, fmt.Errorf("ooc: bounds have %d dims, stream has %d", len(opts.Mins), br.Dims())
	}
	m, err := maintain.New(br.Dims(), opts.Bits, opts.Mins, opts.Maxs)
	if err != nil {
		return nil, err
	}
	for {
		batch, err := br.NextBlock(opts.BatchSize)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if _, err := m.InsertBlock(batch); err != nil {
			return nil, err
		}
	}
	return m.Skyline(), nil
}
