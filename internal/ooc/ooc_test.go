package ooc

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"zskyline/internal/codec"
	"zskyline/internal/gen"
	"zskyline/internal/point"
	"zskyline/internal/seq"
)

func writeTemp(t *testing.T, ds *point.Dataset) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "data.zsky")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := codec.WriteBinary(f, ds); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func sameSet(t *testing.T, got, want []point.Point, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d points, want %d", label, len(got), len(want))
	}
	g := append([]point.Point(nil), got...)
	w := append([]point.Point(nil), want...)
	point.SortLexicographic(g)
	point.SortLexicographic(w)
	for i := range g {
		if !g[i].Equal(w[i]) {
			t.Fatalf("%s: [%d] = %v, want %v", label, i, g[i], w[i])
		}
	}
}

func TestSkylineFileTwoPass(t *testing.T) {
	for _, dist := range []gen.Distribution{gen.Independent, gen.AntiCorrelated} {
		ds := gen.Synthetic(dist, 20000, 4, 9)
		path := writeTemp(t, ds)
		got, err := SkylineFile(path, Options{BatchSize: 700})
		if err != nil {
			t.Fatal(err)
		}
		sameSet(t, got, seq.SB(ds.Points, nil), dist.String())
	}
}

func TestSkylineReaderOnePass(t *testing.T) {
	ds := gen.Synthetic(gen.Correlated, 5000, 3, 5)
	var buf bytes.Buffer
	if err := codec.WriteBinary(&buf, ds); err != nil {
		t.Fatal(err)
	}
	mins := []float64{0, 0, 0}
	maxs := []float64{1, 1, 1}
	got, err := SkylineReader(&buf, Options{BatchSize: 512, Mins: mins, Maxs: maxs})
	if err != nil {
		t.Fatal(err)
	}
	sameSet(t, got, seq.SB(ds.Points, nil), "one-pass")
	// One-pass without bounds refuses.
	if _, err := SkylineReader(bytes.NewReader(nil), Options{}); err == nil {
		t.Error("boundless one-pass accepted")
	}
}

func TestBatchSizeOne(t *testing.T) {
	ds := gen.Synthetic(gen.Independent, 300, 2, 3)
	path := writeTemp(t, ds)
	got, err := SkylineFile(path, Options{BatchSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	sameSet(t, got, seq.BruteForce(ds.Points), "batch=1")
}

func TestCorruptFileDetected(t *testing.T) {
	ds := gen.Synthetic(gen.Independent, 500, 3, 1)
	path := writeTemp(t, ds)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xff // corrupt the checksum
	bad := filepath.Join(t.TempDir(), "bad.zsky")
	if err := os.WriteFile(bad, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := SkylineFile(bad, Options{}); err == nil {
		t.Error("corrupted file accepted")
	}
}

func TestMissingAndEmptyFiles(t *testing.T) {
	if _, err := SkylineFile("/nonexistent.zsky", Options{}); err == nil {
		t.Error("missing file accepted")
	}
	empty := &point.Dataset{Dims: 2}
	path := filepath.Join(t.TempDir(), "empty.zsky")
	f, _ := os.Create(path)
	if err := codec.WriteBinary(f, empty); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := SkylineFile(path, Options{}); err == nil {
		t.Error("empty file should error in two-pass bounds scan")
	}
}
