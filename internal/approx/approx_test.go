package approx

import (
	"math/rand"
	"testing"

	"zskyline/internal/gen"
	"zskyline/internal/point"
	"zskyline/internal/seq"
)

func TestCoversEps(t *testing.T) {
	if !CoversEps(point.Point{1, 1}, point.Point{1.05, 0.95}, 0.1) {
		t.Error("should cover within eps")
	}
	if CoversEps(point.Point{1, 1}, point.Point{1.05, 0.85}, 0.1) {
		t.Error("dim 2 exceeds eps")
	}
	if CoversEps(point.Point{1}, point.Point{1, 2}, 1) {
		t.Error("dim mismatch covered")
	}
}

func TestEpsilonValidation(t *testing.T) {
	if _, err := Epsilon(nil, -0.1); err == nil {
		t.Error("negative eps accepted")
	}
	got, err := Epsilon(nil, 0.1)
	if err != nil || got != nil {
		t.Errorf("empty input: %v %v", got, err)
	}
}

// The defining property: every input point is eps-covered by some kept
// point, and kept points are skyline points.
func TestEpsilonCoversEverything(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		d := 2 + rng.Intn(3)
		ds := gen.Synthetic(gen.Distribution(rng.Intn(3)), 500, d, rng.Int63())
		eps := []float64{0.05, 0.1, 0.3}[rng.Intn(3)]
		kept, err := Epsilon(ds.Points, eps)
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range ds.Points {
			covered := false
			for _, p := range kept {
				if CoversEps(p, q, eps) {
					covered = true
					break
				}
			}
			if !covered {
				t.Fatalf("eps=%v: point %v uncovered", eps, q)
			}
		}
		sky := seq.BruteForce(ds.Points)
		inSky := map[string]bool{}
		for _, p := range sky {
			inSky[p.String()] = true
		}
		for _, p := range kept {
			if !inSky[p.String()] {
				t.Fatalf("kept point %v not a skyline point", p)
			}
		}
	}
}

func TestEpsilonShrinksWithEps(t *testing.T) {
	ds := gen.Synthetic(gen.AntiCorrelated, 3000, 4, 7)
	sizes := []int{}
	for _, eps := range []float64{0, 0.05, 0.15, 0.4} {
		kept, err := Epsilon(ds.Points, eps)
		if err != nil {
			t.Fatal(err)
		}
		sizes = append(sizes, len(kept))
	}
	for i := 1; i < len(sizes); i++ {
		if sizes[i] > sizes[i-1] {
			t.Fatalf("eps-skyline grew: %v", sizes)
		}
	}
	if sizes[len(sizes)-1] >= sizes[0]/4 {
		t.Errorf("large eps barely shrank the skyline: %v", sizes)
	}
}

func TestRepresentative(t *testing.T) {
	if _, err := Representative(nil, 0); err == nil {
		t.Error("k=0 accepted")
	}
	ds := gen.Synthetic(gen.AntiCorrelated, 2000, 3, 9)
	sky := seq.SB(ds.Points, nil)
	for _, k := range []int{1, 5, 20} {
		reps, err := Representative(ds.Points, k)
		if err != nil {
			t.Fatal(err)
		}
		if len(reps) != k {
			t.Fatalf("k=%d: got %d reps", k, len(reps))
		}
		inSky := map[string]bool{}
		for _, p := range sky {
			inSky[p.String()] = true
		}
		for _, p := range reps {
			if !inSky[p.String()] {
				t.Fatalf("representative %v not a skyline point", p)
			}
		}
	}
	// k beyond skyline size returns the whole skyline.
	reps, _ := Representative(ds.Points, len(sky)+10)
	if len(reps) != len(sky) {
		t.Errorf("overlarge k: %d reps vs %d skyline", len(reps), len(sky))
	}
}

// Greedy k-center: the cover radius must shrink monotonically with k.
func TestRepresentativeRadiusShrinks(t *testing.T) {
	ds := gen.Synthetic(gen.AntiCorrelated, 3000, 3, 11)
	sky := seq.SB(ds.Points, nil)
	prev := -1.0
	for _, k := range []int{1, 3, 10, 30} {
		reps, err := Representative(ds.Points, k)
		if err != nil {
			t.Fatal(err)
		}
		r := CoverRadius(sky, reps)
		if prev >= 0 && r > prev {
			t.Fatalf("radius grew with k: %v -> %v", prev, r)
		}
		prev = r
	}
}

func TestRepresentativeDeterministic(t *testing.T) {
	ds := gen.Synthetic(gen.Independent, 1000, 3, 13)
	a, _ := Representative(ds.Points, 7)
	b, _ := Representative(ds.Points, 7)
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatal("representatives not deterministic")
		}
	}
}
