// Package approx shrinks unwieldy skylines two ways:
//
//   - Epsilon builds an ε-skyline (Koltun & Papadimitriou): a subset
//     that ε-covers the whole dataset — for every point q some kept
//     point p satisfies p[i] <= q[i] + ε in every dimension. Larger ε,
//     smaller set.
//   - Representative picks k skyline points by greedy k-center under
//     the L∞ metric (a 2-approximation of the optimal cover radius),
//     the standard "show me k diverse best options" operator.
//
// Both address the paper's §1 observation that high-dimensional
// skylines are too large to present raw.
package approx

import (
	"fmt"
	"math"
	"sort"

	"zskyline/internal/point"
	"zskyline/internal/seq"
)

// CoversEps reports whether p ε-covers q: p[i] <= q[i] + eps in every
// dimension.
func CoversEps(p, q point.Point, eps float64) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] > q[i]+eps {
			return false
		}
	}
	return true
}

// Epsilon returns an ε-skyline of pts: a subset of the exact skyline
// that ε-covers every input point. eps = 0 degenerates to the exact
// skyline (duplicates collapse: equal points cover each other).
func Epsilon(pts []point.Point, eps float64) ([]point.Point, error) {
	if eps < 0 {
		return nil, fmt.Errorf("approx: epsilon must be non-negative, got %v", eps)
	}
	if len(pts) == 0 {
		return nil, nil
	}
	sky := seq.SB(pts, nil)
	// Visit in ascending coordinate-sum order so aggressive coverers
	// come first, then greedily keep points not yet covered.
	sort.SliceStable(sky, func(i, j int) bool {
		return point.SumCoords(sky[i]) < point.SumCoords(sky[j])
	})
	var kept []point.Point
	for _, q := range sky {
		covered := false
		for _, p := range kept {
			if CoversEps(p, q, eps) {
				covered = true
				break
			}
		}
		if !covered {
			kept = append(kept, q)
		}
	}
	return kept, nil
}

// linf is the L∞ distance between points.
func linf(a, b point.Point) float64 {
	m := 0.0
	for i := range a {
		d := math.Abs(a[i] - b[i])
		if d > m {
			m = d
		}
	}
	return m
}

// Representative picks k diverse skyline points by greedy k-center:
// start from the minimum-coordinate-sum skyline point (the "balanced
// best"), then repeatedly add the skyline point farthest from the
// current picks. Returns the whole skyline when k exceeds its size.
func Representative(pts []point.Point, k int) ([]point.Point, error) {
	if k < 1 {
		return nil, fmt.Errorf("approx: k must be positive, got %d", k)
	}
	if len(pts) == 0 {
		return nil, nil
	}
	sky := seq.SB(pts, nil)
	if k >= len(sky) {
		return sky, nil
	}
	// Deterministic seed: the min-sum point, ties by lexicographic
	// order.
	seed := 0
	for i := 1; i < len(sky); i++ {
		si, ss := point.SumCoords(sky[i]), point.SumCoords(sky[seed])
		if si < ss || (si == ss && point.Less(sky[i], sky[seed])) {
			seed = i
		}
	}
	chosen := []point.Point{sky[seed]}
	dist := make([]float64, len(sky))
	for i := range sky {
		dist[i] = linf(sky[i], sky[seed])
	}
	for len(chosen) < k {
		far := 0
		for i := 1; i < len(sky); i++ {
			if dist[i] > dist[far] || (dist[i] == dist[far] && point.Less(sky[i], sky[far])) {
				far = i
			}
		}
		chosen = append(chosen, sky[far])
		for i := range sky {
			if d := linf(sky[i], sky[far]); d < dist[i] {
				dist[i] = d
			}
		}
	}
	return chosen, nil
}

// CoverRadius returns the max over skyline points of the distance to
// the nearest representative — the quantity greedy k-center bounds.
func CoverRadius(sky, reps []point.Point) float64 {
	worst := 0.0
	for _, q := range sky {
		best := math.Inf(1)
		for _, p := range reps {
			if d := linf(p, q); d < best {
				best = d
			}
		}
		if best > worst {
			worst = best
		}
	}
	return worst
}
