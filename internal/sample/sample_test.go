package sample

import (
	"math"
	"testing"

	"zskyline/internal/point"
)

func seqPoints(n int) []point.Point {
	pts := make([]point.Point, n)
	for i := range pts {
		pts[i] = point.Point{float64(i)}
	}
	return pts
}

func TestReservoirSize(t *testing.T) {
	pts := seqPoints(1000)
	for _, k := range []int{1, 10, 500, 999} {
		if got := Reservoir(pts, k, 1); len(got) != k {
			t.Errorf("k=%d: got %d", k, len(got))
		}
	}
	if got := Reservoir(pts, 1000, 1); len(got) != 1000 {
		t.Errorf("k=n: got %d", len(got))
	}
	if got := Reservoir(pts, 2000, 1); len(got) != 1000 {
		t.Errorf("k>n: got %d", len(got))
	}
	if got := Reservoir(pts, 0, 1); got != nil {
		t.Errorf("k=0: got %v", got)
	}
	if got := Reservoir(nil, 5, 1); len(got) != 0 {
		t.Errorf("empty input: got %v", got)
	}
}

func TestReservoirDeterministic(t *testing.T) {
	pts := seqPoints(500)
	a := Reservoir(pts, 50, 42)
	b := Reservoir(pts, 50, 42)
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatal("same seed gave different samples")
		}
	}
}

func TestReservoirNoDuplicateIndices(t *testing.T) {
	pts := seqPoints(200)
	got := Reservoir(pts, 80, 7)
	seen := map[float64]bool{}
	for _, p := range got {
		if seen[p[0]] {
			t.Fatalf("point %v sampled twice", p)
		}
		seen[p[0]] = true
	}
}

// Property: every element has ~k/n inclusion probability.
func TestReservoirUniformity(t *testing.T) {
	const n, k, trials = 100, 20, 3000
	pts := seqPoints(n)
	counts := make([]int, n)
	for trial := 0; trial < trials; trial++ {
		for _, p := range Reservoir(pts, k, int64(trial)) {
			counts[int(p[0])]++
		}
	}
	want := float64(trials) * float64(k) / float64(n)
	for i, c := range counts {
		// 5-sigma band for a binomial(trials, k/n).
		sigma := math.Sqrt(float64(trials) * (float64(k) / n) * (1 - float64(k)/n))
		if math.Abs(float64(c)-want) > 5*sigma {
			t.Fatalf("element %d sampled %d times, want ~%.0f (±%.0f)", i, c, want, 5*sigma)
		}
	}
}

func TestRatio(t *testing.T) {
	pts := seqPoints(1000)
	got, err := Ratio(pts, 0.01, 1)
	if err != nil || len(got) != 10 {
		t.Errorf("ratio 1%%: %d, err %v", len(got), err)
	}
	got, err = Ratio(pts, 0.0001, 1)
	if err != nil || len(got) != 1 {
		t.Errorf("tiny ratio should floor at 1: %d, err %v", len(got), err)
	}
	if _, err := Ratio(pts, 0, 1); err == nil {
		t.Error("ratio 0 should error")
	}
	if _, err := Ratio(pts, 1.5, 1); err == nil {
		t.Error("ratio > 1 should error")
	}
	got, err = Ratio(nil, 0.5, 1)
	if err != nil || got != nil {
		t.Errorf("empty input: %v, %v", got, err)
	}
}

func TestStreamValidation(t *testing.T) {
	if _, err := NewStream(0, 1); err == nil {
		t.Error("zero capacity accepted")
	}
}

func TestStreamFillsThenSamples(t *testing.T) {
	s, err := NewStream(10, 1)
	if err != nil {
		t.Fatal(err)
	}
	pts := seqPoints(5)
	s.AddBatch(pts)
	if s.Seen() != 5 || len(s.Sample()) != 5 {
		t.Errorf("partial fill: seen=%d sample=%d", s.Seen(), len(s.Sample()))
	}
	s.AddBatch(seqPoints(100))
	if len(s.Sample()) != 10 {
		t.Errorf("overfull reservoir holds %d", len(s.Sample()))
	}
	// Sample returns copies of the slice header list, not the live
	// reservoir.
	got := s.Sample()
	got[0] = point.Point{999}
	if s.Sample()[0][0] == 999 {
		t.Error("Sample exposes internal storage")
	}
}

// Property: streaming reservoir is uniform, like the batch one.
func TestStreamUniformity(t *testing.T) {
	const n, k, trials = 60, 12, 3000
	counts := make([]int, n)
	for trial := 0; trial < trials; trial++ {
		s, _ := NewStream(k, int64(trial))
		s.AddBatch(seqPoints(n))
		for _, p := range s.Sample() {
			counts[int(p[0])]++
		}
	}
	want := float64(trials) * float64(k) / float64(n)
	sigma := math.Sqrt(float64(trials) * (float64(k) / n) * (1 - float64(k)/n))
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*sigma {
			t.Fatalf("element %d sampled %d times, want ~%.0f", i, c, want)
		}
	}
}
