// Package sample implements reservoir sampling (Vitter's Algorithm R),
// the preprocessing step the paper's master node uses to learn the
// data partitioning rule from a small unbiased sample (§5.1).
package sample

import (
	"fmt"
	"math/rand"

	"zskyline/internal/point"
)

// Reservoir draws a uniform sample of size k from pts without
// replacement, deterministically for a given seed. If k >= len(pts)
// the whole input is returned (copied). k <= 0 yields an empty sample.
func Reservoir(pts []point.Point, k int, seed int64) []point.Point {
	if k <= 0 {
		return nil
	}
	if k >= len(pts) {
		out := make([]point.Point, len(pts))
		copy(out, pts)
		return out
	}
	r := rand.New(rand.NewSource(seed))
	out := make([]point.Point, k)
	copy(out, pts[:k])
	for i := k; i < len(pts); i++ {
		j := r.Intn(i + 1)
		if j < k {
			out[j] = pts[i]
		}
	}
	return out
}

// Ratio samples ceil(ratio * len(pts)) points, the way the paper's
// experiments specify sampling percentages (§6.6, 0.5%–4%). At least
// one point is sampled from a non-empty input so the learned rule is
// never degenerate.
func Ratio(pts []point.Point, ratio float64, seed int64) ([]point.Point, error) {
	if ratio <= 0 || ratio > 1 {
		return nil, fmt.Errorf("sample: ratio must be in (0,1], got %v", ratio)
	}
	if len(pts) == 0 {
		return nil, nil
	}
	k := int(ratio * float64(len(pts)))
	if k < 1 {
		k = 1
	}
	return Reservoir(pts, k, seed), nil
}

// Stream is an online reservoir: feed points one batch at a time and
// read a uniform k-sample of everything seen so far. This is how a
// coordinator samples a dataset it never holds in memory.
type Stream struct {
	k    int
	seen int64
	rng  *rand.Rand
	res  []point.Point
}

// NewStream creates a streaming reservoir of capacity k.
func NewStream(k int, seed int64) (*Stream, error) {
	if k < 1 {
		return nil, fmt.Errorf("sample: reservoir capacity must be positive, got %d", k)
	}
	return &Stream{k: k, rng: rand.New(rand.NewSource(seed))}, nil
}

// Add feeds one point through Vitter's Algorithm R.
func (s *Stream) Add(p point.Point) {
	s.seen++
	if len(s.res) < s.k {
		s.res = append(s.res, p)
		return
	}
	j := s.rng.Int63n(s.seen)
	if j < int64(s.k) {
		s.res[j] = p
	}
}

// AddBatch feeds a batch.
func (s *Stream) AddBatch(pts []point.Point) {
	for _, p := range pts {
		s.Add(p)
	}
}

// AddBlock feeds every row of a block. Admitted rows are copied out of
// the block, so a long-lived reservoir never pins a transient block's
// whole backing array.
func (s *Stream) AddBlock(b point.Block) {
	rows := b.Len()
	for i := 0; i < rows; i++ {
		s.seen++
		if len(s.res) < s.k {
			s.res = append(s.res, b.Row(i).Clone())
			continue
		}
		j := s.rng.Int63n(s.seen)
		if j < int64(s.k) {
			s.res[j] = b.Row(i).Clone()
		}
	}
}

// Seen returns how many points have been offered.
func (s *Stream) Seen() int64 { return s.seen }

// Sample returns a copy of the current reservoir.
func (s *Stream) Sample() []point.Point {
	out := make([]point.Point, len(s.res))
	copy(out, s.res)
	return out
}
