package grouping

import (
	"math/rand"
	"testing"
	"testing/quick"

	"zskyline/internal/gen"
	"zskyline/internal/partition"
	"zskyline/internal/zorder"
)

// quick property: for arbitrary sampled workloads and group counts,
// both grouping algorithms assign every partition exactly once (or
// prune it), produce group ids within range, and finish with at most m
// groups after consolidation.
func TestQuickGroupingInvariants(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := 2 + r.Intn(4)
		n := 300 + r.Intn(1500)
		m := 2 + r.Intn(12)
		parts := m * (1 + r.Intn(5))
		dist := gen.Distribution(r.Intn(3))
		ds := gen.Synthetic(dist, n, d, seed)
		enc, err := zorder.NewUnitEncoder(d, 4+r.Intn(10))
		if err != nil {
			return false
		}
		zc, err := partition.NewZCurve(enc, ds.Points, parts)
		if err != nil {
			return false
		}
		infos := zc.Infos()

		check := func(pg *PGMap) bool {
			if pg.Groups < 1 || pg.Groups > m {
				return false
			}
			if len(pg.Assign)+len(pg.Pruned) != len(infos) {
				return false
			}
			for _, g := range pg.Assign {
				if g < 0 || g >= pg.Groups {
					return false
				}
			}
			for _, pid := range pg.Pruned {
				if _, dup := pg.Assign[pid]; dup {
					return false
				}
			}
			// Every group id in [0, Groups) must be used (no holes
			// after relabeling).
			used := make([]bool, pg.Groups)
			for _, g := range pg.Assign {
				used[g] = true
			}
			for _, u := range used {
				if !u {
					return false
				}
			}
			return true
		}

		h, err := Heuristic(infos, m)
		if err != nil || !check(h) {
			return false
		}
		dg, err := Dominance(enc, infos, m)
		if err != nil || !check(dg) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
