package grouping

import (
	"testing"

	"zskyline/internal/gen"
	"zskyline/internal/metrics"
	"zskyline/internal/partition"
	"zskyline/internal/zorder"
)

func learn(t *testing.T, dist gen.Distribution, n, d, parts int) (*zorder.Encoder, *partition.ZCurve) {
	t.Helper()
	ds := gen.Synthetic(dist, n, d, 7)
	enc, err := zorder.NewUnitEncoder(d, 10)
	if err != nil {
		t.Fatal(err)
	}
	z, err := partition.NewZCurve(enc, ds.Points, parts)
	if err != nil {
		t.Fatal(err)
	}
	return enc, z
}

func TestHeuristicValidation(t *testing.T) {
	_, z := learn(t, gen.Independent, 1000, 3, 8)
	if _, err := Heuristic(z.Infos(), 0); err == nil {
		t.Error("zero groups should fail")
	}
	if _, err := Heuristic(nil, 4); err == nil {
		t.Error("no partitions should fail")
	}
}

func TestHeuristicCoversAllPartitions(t *testing.T) {
	_, z := learn(t, gen.AntiCorrelated, 3000, 4, 32)
	pg, err := Heuristic(z.Infos(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(pg.Assign) != z.N() {
		t.Fatalf("assigned %d of %d partitions", len(pg.Assign), z.N())
	}
	for pid, g := range pg.Assign {
		if g < 0 || g >= pg.Groups {
			t.Fatalf("partition %d in out-of-range group %d", pid, g)
		}
	}
	if pg.Groups < 1 {
		t.Fatalf("groups = %d", pg.Groups)
	}
}

func TestHeuristicBalancesSkyline(t *testing.T) {
	_, z := learn(t, gen.AntiCorrelated, 5000, 4, 64)
	m := 8
	// Redistribute first, as ZHG prescribes.
	ds := gen.Synthetic(gen.AntiCorrelated, 5000, 4, 7)
	totalSky := 0
	for _, in := range z.Infos() {
		totalSky += in.SkyCount
	}
	rz := z.Redistribute(ds.Points, totalSky/m)
	pg, err := Heuristic(rz.Infos(), m)
	if err != nil {
		t.Fatal(err)
	}
	_, sky := GroupLoads(rz.Infos(), pg)
	bal := metrics.NewBalance(sky)
	// Grouped skyline shares should be far tighter than the raw
	// per-partition spread.
	raw := make([]int, len(rz.Infos()))
	for i, in := range rz.Infos() {
		raw[i] = in.SkyCount
	}
	rawBal := metrics.NewBalance(raw)
	if bal.Imbalance >= rawBal.Imbalance && rawBal.Imbalance > 1.05 {
		t.Errorf("grouping did not improve skyline balance: %.2f vs raw %.2f",
			bal.Imbalance, rawBal.Imbalance)
	}
}

func TestDominanceValidation(t *testing.T) {
	enc, z := learn(t, gen.Independent, 1000, 3, 8)
	if _, err := Dominance(enc, z.Infos(), 0); err == nil {
		t.Error("zero groups should fail")
	}
	if _, err := Dominance(enc, nil, 4); err == nil {
		t.Error("no partitions should fail")
	}
}

func TestDominanceGroupsEverythingOnce(t *testing.T) {
	enc, z := learn(t, gen.Independent, 4000, 5, 48)
	pg, err := Dominance(enc, z.Infos(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(pg.Assign)+len(pg.Pruned) != z.N() {
		t.Fatalf("assigned %d + pruned %d != %d partitions",
			len(pg.Assign), len(pg.Pruned), z.N())
	}
	seen := map[int]bool{}
	for pid := range pg.Assign {
		if seen[pid] {
			t.Fatalf("partition %d assigned twice", pid)
		}
		seen[pid] = true
	}
	for _, pid := range pg.Pruned {
		if _, ok := pg.Assign[pid]; ok {
			t.Fatalf("pruned partition %d also assigned", pid)
		}
	}
}

func TestDominancePrunesOnCorrelatedData(t *testing.T) {
	// Correlated data along the diagonal: early Z-partitions dominate
	// later ones, so pruning should fire.
	enc, z := learn(t, gen.Correlated, 5000, 4, 32)
	pg, err := Dominance(enc, z.Infos(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(pg.Pruned) == 0 {
		t.Error("expected dominated partitions to be pruned on correlated data")
	}
}

// Pruning must be sound: a pruned partition's interval region really is
// dominated by some other partition's extent.
func TestDominancePruningSound(t *testing.T) {
	enc, z := learn(t, gen.Correlated, 4000, 3, 32)
	pg, _ := Dominance(enc, z.Infos(), 8)
	infos := z.Infos()
	for _, pid := range pg.Pruned {
		found := false
		for _, other := range infos {
			if other.ID == pid || other.Count == 0 {
				continue
			}
			if zorder.RegionDominatesRegion(other.Extent, infos[pid].Interval) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("partition %d pruned without a dominating witness", pid)
		}
	}
}

func TestDominanceBalancesLoads(t *testing.T) {
	enc, z := learn(t, gen.AntiCorrelated, 6000, 4, 64)
	m := 8
	pg, err := Dominance(enc, z.Infos(), m)
	if err != nil {
		t.Fatal(err)
	}
	points, sky := GroupLoads(z.Infos(), pg)
	pb := metrics.NewBalance(points)
	sb := metrics.NewBalance(sky)
	// The greedy respects the tcons/scons ceilings, so no group should
	// be wildly above average (ceilings are ceil(avg), overshoot only
	// from single oversized seed partitions).
	if pb.Imbalance > 2.0 {
		t.Errorf("point imbalance %.2f across groups: %v", pb.Imbalance, points)
	}
	if sb.Imbalance > 2.5 {
		t.Errorf("skyline imbalance %.2f across groups: %v", sb.Imbalance, sky)
	}
}

// The defining ZDG property: grouped partitions have higher intra-group
// dominance volume than a random/identity grouping of the same size.
func TestDominanceMaximizesIntraGroupVolume(t *testing.T) {
	enc, z := learn(t, gen.Independent, 6000, 3, 32)
	m := 4
	pg, err := Dominance(enc, z.Infos(), m)
	if err != nil {
		t.Fatal(err)
	}
	infos := z.Infos()
	intra := func(assign map[int]int) float64 {
		total := 0.0
		for i := range infos {
			for j := i + 1; j < len(infos); j++ {
				gi, ok1 := assign[infos[i].ID]
				gj, ok2 := assign[infos[j].ID]
				if ok1 && ok2 && gi == gj {
					total += enc.DominanceVolume(infos[i].Extent, infos[j].Extent)
				}
			}
		}
		return total
	}
	// Round-robin grouping with the same group count as the baseline.
	rr := map[int]int{}
	for i, in := range infos {
		rr[in.ID] = i % pg.Groups
	}
	if got, base := intra(pg.Assign), intra(rr); got < base {
		t.Errorf("ZDG intra-group volume %.4f below round-robin %.4f", got, base)
	}
}

func TestIdentity(t *testing.T) {
	_, z := learn(t, gen.Independent, 1000, 3, 8)
	pg := Identity(z.Infos())
	if pg.Groups != z.N() || len(pg.Assign) != z.N() {
		t.Fatalf("identity: groups=%d assigned=%d", pg.Groups, len(pg.Assign))
	}
	for pid, g := range pg.Assign {
		if _, ok := pg.GroupOf(pid); !ok {
			t.Fatal("identity pruned a partition")
		}
		if g < 0 || g >= pg.Groups {
			t.Fatalf("bad group %d", g)
		}
	}
}

func TestPGMapString(t *testing.T) {
	pg := &PGMap{Assign: map[int]int{0: 0}, Groups: 1, Pruned: []int{3}}
	if pg.String() == "" {
		t.Error("empty String()")
	}
	if _, ok := pg.GroupOf(3); ok {
		t.Error("pruned partition resolved")
	}
}
