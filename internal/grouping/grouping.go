// Package grouping implements the paper's two partition-grouping
// strategies: Heuristic grouping (§4.2, Algorithm 1), which spreads
// sample skyline points evenly over groups to kill stragglers, and
// Dominance-based grouping (§4.3, Algorithm 2), which additionally
// maximizes intra-group dominance volume so that redundant skyline
// candidates are pruned inside each worker.
//
// Both take the per-partition sample statistics produced by
// partition.ZCurve and emit a PGMap: the partition-ID to group-ID
// routing rule that the first MapReduce job broadcasts to every mapper
// (Algorithm 3). Partitions pruned by dominance have no entry — their
// points can never contribute a skyline point, so mappers drop them
// (Algorithm 3, line 7).
package grouping

import (
	"fmt"
	"sort"

	"zskyline/internal/partition"
	"zskyline/internal/zorder"
)

// PGMap is the learned routing rule between partitions and groups.
type PGMap struct {
	// Assign maps partition ID to group ID. A missing key means the
	// partition was pruned as fully dominated.
	Assign map[int]int
	// Groups is the number of groups actually created.
	Groups int
	// Pruned lists the partition IDs dropped by dominance pruning.
	Pruned []int
}

// GroupOf resolves a partition to its group; ok is false if the
// partition was pruned.
func (m *PGMap) GroupOf(pid int) (int, bool) {
	g, ok := m.Assign[pid]
	return g, ok
}

// String summarizes the map for logs.
func (m *PGMap) String() string {
	return fmt.Sprintf("PGMap{groups: %d, partitions: %d, pruned: %d}",
		m.Groups, len(m.Assign), len(m.Pruned))
}

// caps returns the per-group ceilings the paper calls tcons (points)
// and scons (skyline points): averages over the requested group count.
func caps(infos []partition.Info, m int) (tcons, scons int) {
	totalCount, totalSky := 0, 0
	for _, in := range infos {
		totalCount += in.Count
		totalSky += in.SkyCount
	}
	tcons = (totalCount + m - 1) / m
	scons = (totalSky + m - 1) / m
	if scons < 1 {
		scons = 1
	}
	if tcons < 1 {
		tcons = 1
	}
	return tcons, scons
}

// Heuristic is Algorithm 1: sort partitions by descending sample
// skyline count and fill groups sequentially, opening a new group
// whenever the running point count would exceed tcons or the running
// skyline count would exceed scons. Callers wanting the paper's full
// ZHG behaviour should Redistribute the partitioner first so no single
// partition exceeds scons.
func Heuristic(infos []partition.Info, m int) (*PGMap, error) {
	if m < 1 {
		return nil, fmt.Errorf("grouping: need at least one group, got %d", m)
	}
	if len(infos) == 0 {
		return nil, fmt.Errorf("grouping: no partitions to group")
	}
	tcons, scons := caps(infos, m)
	order := append([]partition.Info(nil), infos...)
	sort.SliceStable(order, func(i, j int) bool {
		if order[i].SkyCount != order[j].SkyCount {
			return order[i].SkyCount > order[j].SkyCount
		}
		return order[i].Count > order[j].Count
	})
	pg := &PGMap{Assign: make(map[int]int, len(infos))}
	g, tcount, scount := 0, 0, 0
	started := false
	for _, in := range order {
		if started && (tcount+in.Count > tcons || scount+in.SkyCount > scons) {
			g++
			tcount, scount = 0, 0
		}
		pg.Assign[in.ID] = g
		tcount += in.Count
		scount += in.SkyCount
		started = true
	}
	pg.Groups = g + 1
	consolidate(pg, infos, m)
	return pg, nil
}

// Dominance is Algorithm 2: prune fully-dominated partitions, build
// the dominance matrix DM over partition RZ-regions (Definition 6),
// rank partitions by skyline count times dominance power (Definition
// 7), and greedily grow each group by repeatedly admitting the
// partition with the largest total dominance volume against the
// group's current members (the maxDominate step), subject to the
// tcons/scons ceilings.
func Dominance(enc *zorder.Encoder, infos []partition.Info, m int) (*PGMap, error) {
	if m < 1 {
		return nil, fmt.Errorf("grouping: need at least one group, got %d", m)
	}
	if len(infos) == 0 {
		return nil, fmt.Errorf("grouping: no partitions to group")
	}
	pg := &PGMap{Assign: make(map[int]int, len(infos))}

	// Prune partitions whose full Z-interval is dominated by another
	// partition's sample extent: every real point routed to them is
	// dominated by every sample point of the dominating partition.
	alive := make([]partition.Info, 0, len(infos))
	for _, in := range infos {
		pruned := false
		for _, other := range infos {
			if other.ID == in.ID || other.Count == 0 {
				continue
			}
			if zorder.RegionDominatesRegion(other.Extent, in.Interval) {
				pruned = true
				break
			}
		}
		if pruned {
			pg.Pruned = append(pg.Pruned, in.ID)
		} else {
			alive = append(alive, in)
		}
	}
	if len(alive) == 0 {
		// Degenerate: everything dominated everything (identical
		// regions). Keep all rather than route nothing.
		alive = append(alive, infos...)
		pg.Pruned = nil
	}

	tcons, scons := caps(alive, m)

	// Dominance matrix over sample extents (Definition 6), indexed by
	// position in alive.
	k := len(alive)
	dm := make([][]float64, k)
	power := make([]float64, k)
	for i := range dm {
		dm[i] = make([]float64, k)
	}
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			v := enc.DominanceVolume(alive[i].Extent, alive[j].Extent)
			dm[i][j] = v
			dm[j][i] = v
			power[i] += v
			power[j] += v
		}
	}

	// Rank by |Pts_i| x Gamma(Pt_i) descending (Algorithm 2, sort()).
	order := make([]int, k)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ka := float64(alive[order[a]].SkyCount) * power[order[a]]
		kb := float64(alive[order[b]].SkyCount) * power[order[b]]
		if ka != kb {
			return ka > kb
		}
		if power[order[a]] != power[order[b]] {
			return power[order[a]] > power[order[b]]
		}
		return alive[order[a]].SkyCount > alive[order[b]].SkyCount
	})

	assigned := make([]bool, k)
	g := 0
	for seedPos := 0; seedPos < k; seedPos++ {
		seed := order[seedPos]
		if assigned[seed] {
			continue
		}
		// Open a group with the highest-ranked unassigned partition.
		group := []int{seed}
		assigned[seed] = true
		tcount := alive[seed].Count
		scount := alive[seed].SkyCount
		for {
			// maxDominate: unassigned partition with largest total
			// volume against current members.
			best, bestVol := -1, -1.0
			for _, cand := range order {
				if assigned[cand] {
					continue
				}
				if tcount+alive[cand].Count > tcons || scount+alive[cand].SkyCount > scons {
					continue
				}
				vol := 0.0
				for _, memb := range group {
					vol += dm[memb][cand]
				}
				if vol > bestVol {
					best, bestVol = cand, vol
				}
			}
			if best == -1 {
				break
			}
			assigned[best] = true
			group = append(group, best)
			tcount += alive[best].Count
			scount += alive[best].SkyCount
		}
		for _, memb := range group {
			pg.Assign[alive[memb].ID] = g
		}
		g++
	}
	pg.Groups = g
	consolidate(pg, alive, m)
	return pg, nil
}

// consolidate merges the lightest groups until at most m remain. The
// greedy passes above open a new group whenever a ceiling would be
// crossed, which can overshoot the requested group count; the paper's
// workers are fixed at M, so we fold the smallest groups together —
// they violate the ceilings the least and keep the worker count (and
// thus the candidate-set count) at M.
func consolidate(pg *PGMap, infos []partition.Info, m int) {
	for pg.Groups > m {
		points, _ := GroupLoads(infos, pg)
		// Find the two lightest groups.
		a, b := -1, -1
		for g, load := range points {
			switch {
			case a == -1 || load < points[a]:
				b = a
				a = g
			case b == -1 || load < points[b]:
				b = g
			}
		}
		if a == -1 || b == -1 {
			return
		}
		// Merge b into a, relabel the last group to fill b's slot.
		last := pg.Groups - 1
		for pid, g := range pg.Assign {
			if g == b {
				pg.Assign[pid] = a
			}
		}
		if b != last {
			for pid, g := range pg.Assign {
				if g == last {
					pg.Assign[pid] = b
				}
			}
		}
		pg.Groups--
	}
}

// GroupLoads aggregates per-group point and skyline counts under a
// PGMap — the balance signals the experiments report.
func GroupLoads(infos []partition.Info, pg *PGMap) (points, sky []int) {
	points = make([]int, pg.Groups)
	sky = make([]int, pg.Groups)
	for _, in := range infos {
		if g, ok := pg.GroupOf(in.ID); ok {
			points[g] += in.Count
			sky[g] += in.SkyCount
		}
	}
	return points, sky
}

// Identity maps every partition to its own group — the Naive-Z
// strategy of §6.1 (Z-order partitioning with no grouping).
func Identity(infos []partition.Info) *PGMap {
	pg := &PGMap{Assign: make(map[int]int, len(infos)), Groups: len(infos)}
	for i, in := range infos {
		pg.Assign[in.ID] = i
	}
	return pg
}

// DominanceMatrix exposes Definition 6's matrix for analysis: entry
// [i][j] is the dominance volume between partitions i and j's sample
// extents, and the returned power vector is each partition's Gamma
// (Definition 7).
func DominanceMatrix(enc *zorder.Encoder, infos []partition.Info) (dm [][]float64, power []float64) {
	k := len(infos)
	dm = make([][]float64, k)
	power = make([]float64, k)
	for i := range dm {
		dm[i] = make([]float64, k)
	}
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			v := enc.DominanceVolume(infos[i].Extent, infos[j].Extent)
			dm[i][j] = v
			dm[j][i] = v
			power[i] += v
			power[j] += v
		}
	}
	return dm, power
}
