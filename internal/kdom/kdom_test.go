package kdom

import (
	"math/rand"
	"testing"

	"zskyline/internal/gen"
	"zskyline/internal/metrics"
	"zskyline/internal/point"
	"zskyline/internal/seq"
)

func TestKDominatesBasics(t *testing.T) {
	cases := []struct {
		p, q point.Point
		k    int
		want bool
	}{
		{point.Point{1, 1, 9}, point.Point{2, 2, 0}, 2, true},  // better on 2 of 3
		{point.Point{1, 1, 9}, point.Point{2, 2, 0}, 3, false}, // worse on dim 3
		{point.Point{1, 1, 1}, point.Point{2, 2, 2}, 3, true},  // full dominance
		{point.Point{1, 1}, point.Point{1, 1}, 2, false},       // equal never dominates
		{point.Point{1, 2}, point.Point{1, 2}, 1, false},       // equal, any k
		{point.Point{0, 9}, point.Point{1, 0}, 1, true},        // 1-dominance is very easy
		{point.Point{1}, point.Point{1, 2}, 1, false},          // dim mismatch
		{point.Point{1, 1}, point.Point{2, 2}, 0, false},       // invalid k
		{point.Point{1, 1}, point.Point{2, 2}, 3, false},       // k > d
	}
	for _, c := range cases {
		if got := KDominates(c.p, c.q, c.k); got != c.want {
			t.Errorf("KDominates(%v, %v, %d) = %v, want %v", c.p, c.q, c.k, got, c.want)
		}
	}
}

// Property: classic dominance implies k-dominance for every valid k.
func TestClassicImpliesKDominance(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 3000; iter++ {
		d := 2 + rng.Intn(5)
		p := make(point.Point, d)
		q := make(point.Point, d)
		for i := 0; i < d; i++ {
			p[i] = float64(rng.Intn(4))
			q[i] = float64(rng.Intn(4))
		}
		if point.Dominates(p, q) {
			for k := 1; k <= d; k++ {
				if !KDominates(p, q, k) {
					t.Fatalf("classic dominance without %d-dominance: %v %v", k, p, q)
				}
			}
		}
	}
}

func TestSkylineValidation(t *testing.T) {
	pts := []point.Point{{1, 2}}
	if _, err := Skyline(pts, 0, nil); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := Skyline(pts, 3, nil); err == nil {
		t.Error("k>d accepted")
	}
	got, err := Skyline(nil, 1, nil)
	if err != nil || got != nil {
		t.Errorf("empty input: %v %v", got, err)
	}
}

// Property: TSA equals the brute-force k-dominant skyline.
func TestTwoScanMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 80; iter++ {
		d := 2 + rng.Intn(5)
		k := 1 + rng.Intn(d)
		n := rng.Intn(250)
		pts := make([]point.Point, n)
		for i := range pts {
			p := make(point.Point, d)
			for j := range p {
				if iter%2 == 0 {
					p[j] = float64(rng.Intn(5))
				} else {
					p[j] = rng.Float64()
				}
			}
			pts[i] = p
		}
		want := BruteForce(pts, k)
		got, err := Skyline(pts, k, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("d=%d k=%d n=%d: got %d, want %d", d, k, n, len(got), len(want))
		}
		g := append([]point.Point(nil), got...)
		w := append([]point.Point(nil), want...)
		point.SortLexicographic(g)
		point.SortLexicographic(w)
		for i := range g {
			if !g[i].Equal(w[i]) {
				t.Fatalf("mismatch at %d", i)
			}
		}
	}
}

// Property: k=d reproduces the classic skyline; the k-dominant skyline
// is a subset of the classic one and shrinks (weakly) as k decreases.
func TestContainmentHierarchy(t *testing.T) {
	ds := gen.Synthetic(gen.Independent, 800, 5, 11)
	classic := seq.BruteForce(ds.Points)
	full, err := Skyline(ds.Points, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(full) != len(classic) {
		t.Fatalf("k=d gave %d, classic %d", len(full), len(classic))
	}
	prev := len(full)
	for k := 4; k >= 2; k-- {
		sub, err := Skyline(ds.Points, k, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(sub) > prev {
			t.Fatalf("k=%d grew the result: %d > %d", k, len(sub), prev)
		}
		// Subset of classic skyline.
		inClassic := map[string]int{}
		for _, p := range classic {
			inClassic[p.String()]++
		}
		for _, p := range sub {
			if inClassic[p.String()] == 0 {
				t.Fatalf("k=%d point %v not in classic skyline", k, p)
			}
			inClassic[p.String()]--
		}
		prev = len(sub)
	}
}

// The headline behaviour: in high dimensions the k-dominant skyline is
// much smaller than the full skyline.
func TestShrinksHighDimensionalSkylines(t *testing.T) {
	ds := gen.Synthetic(gen.AntiCorrelated, 1000, 8, 13)
	full, _ := Skyline(ds.Points, 8, nil)
	reduced, _ := Skyline(ds.Points, 6, nil)
	if len(reduced) >= len(full)/2 {
		t.Errorf("6-dominant skyline %d not much smaller than full %d", len(reduced), len(full))
	}
}

func TestDuplicatesSurvive(t *testing.T) {
	pts := []point.Point{{1, 1}, {1, 1}, {5, 5}}
	got, err := Skyline(pts, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("duplicates: got %d, want 2 copies of (1,1)", len(got))
	}
}

func TestTally(t *testing.T) {
	tal := &metrics.Tally{}
	ds := gen.Synthetic(gen.Independent, 300, 4, 1)
	if _, err := Skyline(ds.Points, 3, tal); err != nil {
		t.Fatal(err)
	}
	if tal.Snapshot().DominanceTests == 0 {
		t.Error("no tests recorded")
	}
}
