// Package kdom implements k-dominant skylines (Chan et al., SIGMOD
// 2006), the standard remedy for the paper's motivating pain point
// that full skylines explode in high dimensions: p k-dominates q when
// p is no worse on at least k of the d dimensions and strictly better
// on at least one of those k. Lowering k below d shrinks the result
// set aggressively.
//
// k-dominance is not transitive, so the one-pass window algorithms of
// package seq are unsound here.
//
// Deprecated: this package is now a thin facade over the k-dominance
// provider of package dominance, kept for API compatibility. New code
// should construct dominance.NewKDom(k) and use the provider-generic
// kernels (dominance.Skyline, seq.SkylineUnder) or thread the
// descriptor kdom:k through a pipeline Spec, which runs k-dominance on
// any executor.
package kdom

import (
	"fmt"

	"zskyline/internal/dominance"
	"zskyline/internal/metrics"
	"zskyline/internal/point"
)

// KDominates reports whether p k-dominates q: p is no worse than q in
// at least k dims and better in at least one of those k dims.
func KDominates(p, q point.Point, k int) bool {
	if len(p) != len(q) || k <= 0 || k > len(p) {
		return false
	}
	prov, err := dominance.NewKDom(k)
	if err != nil {
		return false
	}
	return prov.Dominates(p, q)
}

// Skyline computes the k-dominant skyline (a scan that keeps a
// candidate window, closed by a verification scan against the full
// dataset — k-dominance is not transitive, so an eliminated point can
// still disqualify a candidate). k == d degenerates to the classic
// skyline. tally may be nil.
func Skyline(pts []point.Point, k int, tally *metrics.Tally) ([]point.Point, error) {
	if len(pts) == 0 {
		return nil, nil
	}
	d := len(pts[0])
	if k <= 0 || k > d {
		return nil, fmt.Errorf("kdom: k must be in [1,%d], got %d", d, k)
	}
	prov, err := dominance.NewKDom(k)
	if err != nil {
		return nil, fmt.Errorf("kdom: %w", err)
	}
	return dominance.Skyline(prov, pts, tally), nil
}

// BruteForce is the quadratic oracle: keep p iff no other point
// k-dominates it.
func BruteForce(pts []point.Point, k int) []point.Point {
	prov, err := dominance.NewKDom(k)
	if err != nil {
		return nil
	}
	return dominance.BruteForce(prov, pts)
}
