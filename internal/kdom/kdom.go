// Package kdom implements k-dominant skylines (Chan et al., SIGMOD
// 2006), the standard remedy for the paper's motivating pain point
// that full skylines explode in high dimensions: p k-dominates q when
// p is no worse on at least k of the d dimensions and strictly better
// on at least one of those k. Lowering k below d shrinks the result
// set aggressively.
//
// k-dominance is not transitive, so the one-pass window algorithms of
// package seq are unsound here; this package implements the Two-Scan
// Algorithm (TSA): a first scan produces candidates, a second scan
// verifies every candidate against the full dataset.
package kdom

import (
	"fmt"

	"zskyline/internal/metrics"
	"zskyline/internal/point"
)

// KDominates reports whether p k-dominates q: at least k dimensions
// where p <= q, at least one of them strict, and no... precisely: p is
// no worse than q in at least k dims and better in at least one of
// those k dims.
func KDominates(p, q point.Point, k int) bool {
	if len(p) != len(q) || k <= 0 || k > len(p) {
		return false
	}
	noWorse, better := 0, false
	for i := range p {
		if p[i] <= q[i] {
			noWorse++
			if p[i] < q[i] {
				better = true
			}
		}
	}
	return noWorse >= k && better
}

// Skyline computes the k-dominant skyline with the Two-Scan Algorithm.
// k == d degenerates to the classic skyline. tally may be nil.
func Skyline(pts []point.Point, k int, tally *metrics.Tally) ([]point.Point, error) {
	if len(pts) == 0 {
		return nil, nil
	}
	d := len(pts[0])
	if k <= 0 || k > d {
		return nil, fmt.Errorf("kdom: k must be in [1,%d], got %d", d, k)
	}

	// Scan 1: build a candidate set. A candidate may still be a false
	// positive (k-dominated by a point that was itself eliminated).
	var cands []point.Point
	var tests int64
	for _, p := range pts {
		dominated := false
		keep := cands[:0]
		for i, q := range cands {
			tests++
			if KDominates(q, p, k) {
				dominated = true
				keep = append(keep, cands[i:]...)
				break
			}
			tests++
			if KDominates(p, q, k) {
				continue // evict q
			}
			keep = append(keep, q)
		}
		cands = keep
		if !dominated {
			cands = append(cands, p)
		}
	}

	// Scan 2: verify candidates against the whole dataset, because
	// non-transitivity means an eliminated point can still k-dominate a
	// candidate.
	var out []point.Point
	for _, c := range cands {
		ok := true
		for _, q := range pts {
			if sameSlice(c, q) {
				continue
			}
			tests++
			if KDominates(q, c, k) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, c)
		}
	}
	tally.AddDominanceTests(tests)
	return out, nil
}

// sameSlice reports whether two points are the same backing slice (the
// identity check scan 2 needs so a point does not disqualify itself;
// coordinate-equal duplicates must still be compared, as equal points
// never k-dominate each other anyway).
func sameSlice(a, b point.Point) bool {
	return len(a) == len(b) && len(a) > 0 && &a[0] == &b[0]
}

// BruteForce is the quadratic oracle: keep p iff no other point
// k-dominates it.
func BruteForce(pts []point.Point, k int) []point.Point {
	var out []point.Point
	for i, p := range pts {
		dominated := false
		for j, q := range pts {
			if i == j {
				continue
			}
			if KDominates(q, p, k) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, p)
		}
	}
	return out
}
