package plan

import (
	"testing"

	"zskyline/internal/dominance"
	"zskyline/internal/gen"
	"zskyline/internal/point"
	"zskyline/internal/sample"
)

// The block map path must allocate at least 5x less than the per-point
// path on identical data — the data-plane refactor's headline number.
// SB as the local algorithm keeps the combine step's allocations the
// same on both sides, so the ratio measures routing alone.
func TestMapBlockAllocReduction(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc measurement is slow")
	}
	const n, d = 20000, 5
	ds := gen.Synthetic(gen.AntiCorrelated, n, d, 42)
	smp, err := sample.Ratio(ds.Points, 0.02, 42)
	if err != nil {
		t.Fatal(err)
	}
	mins, maxs, err := ds.Bounds()
	if err != nil {
		t.Fatal(err)
	}
	spec := &Spec{Strategy: ZDG, Local: SB, Merge: MergeZM,
		M: 32, Delta: 4, SampleRatio: 0.02, Bits: 16}
	r, err := Learn(spec, ds.Dims, mins, maxs, smp, nil)
	if err != nil {
		t.Fatal(err)
	}
	blk := point.BlockOf(ds.Dims, ds.Points)

	perPoint := testing.AllocsPerRun(3, func() { _ = r.MapChunk(ds.Points, nil) })
	perBlock := testing.AllocsPerRun(3, func() { _ = r.MapBlock(blk, nil) })
	if perBlock <= 0 {
		t.Fatalf("implausible block allocs %v", perBlock)
	}
	ratio := perPoint / perBlock
	t.Logf("map allocs: per-point %.0f, block %.0f, ratio %.1fx", perPoint, perBlock, ratio)
	if ratio < 5 {
		t.Errorf("block map path saves only %.1fx allocations, want >= 5x", ratio)
	}
}

// The pluggable-dominance layer must be free for the default relation:
// a rule learned with an explicit pareto descriptor must allocate
// exactly like a rule learned with the zero descriptor on the block map
// path, and the >= 5x block-vs-point gate must hold through it.
func TestParetoProviderNoRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc measurement is slow")
	}
	const n, d = 20000, 5
	ds := gen.Synthetic(gen.AntiCorrelated, n, d, 42)
	smp, err := sample.Ratio(ds.Points, 0.02, 42)
	if err != nil {
		t.Fatal(err)
	}
	mins, maxs, err := ds.Bounds()
	if err != nil {
		t.Fatal(err)
	}
	learn := func(desc dominance.Descriptor) *Rule {
		spec := &Spec{Strategy: ZDG, Local: SB, Merge: MergeZM,
			M: 32, Delta: 4, SampleRatio: 0.02, Bits: 16, Dominance: desc}
		r, err := Learn(spec, ds.Dims, mins, maxs, smp, nil)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	zero := learn(dominance.Descriptor{})
	named := learn(dominance.Descriptor{Kind: dominance.KindPareto})
	blk := point.BlockOf(ds.Dims, ds.Points)

	zeroAllocs := testing.AllocsPerRun(3, func() { _ = zero.MapBlock(blk, nil) })
	namedAllocs := testing.AllocsPerRun(3, func() { _ = named.MapBlock(blk, nil) })
	t.Logf("block map allocs: zero descriptor %.0f, pareto descriptor %.0f", zeroAllocs, namedAllocs)
	// Allow 1% jitter: AllocsPerRun wobbles by a count or two on
	// internal map growth, but a provider-layer regression would cost
	// allocations per row, i.e. thousands here.
	if namedAllocs > zeroAllocs*1.01+1 {
		t.Errorf("pareto descriptor regresses block map allocs: %v vs %v", namedAllocs, zeroAllocs)
	}
	perPoint := testing.AllocsPerRun(3, func() { _ = named.MapChunk(ds.Points, nil) })
	if namedAllocs <= 0 {
		t.Fatalf("implausible block allocs %v", namedAllocs)
	}
	if ratio := perPoint / namedAllocs; ratio < 5 {
		t.Errorf("pareto provider block map path saves only %.1fx allocations, want >= 5x", ratio)
	}
}
