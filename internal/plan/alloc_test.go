package plan

import (
	"testing"

	"zskyline/internal/gen"
	"zskyline/internal/point"
	"zskyline/internal/sample"
)

// The block map path must allocate at least 5x less than the per-point
// path on identical data — the data-plane refactor's headline number.
// SB as the local algorithm keeps the combine step's allocations the
// same on both sides, so the ratio measures routing alone.
func TestMapBlockAllocReduction(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc measurement is slow")
	}
	const n, d = 20000, 5
	ds := gen.Synthetic(gen.AntiCorrelated, n, d, 42)
	smp, err := sample.Ratio(ds.Points, 0.02, 42)
	if err != nil {
		t.Fatal(err)
	}
	mins, maxs, err := ds.Bounds()
	if err != nil {
		t.Fatal(err)
	}
	spec := &Spec{Strategy: ZDG, Local: SB, Merge: MergeZM,
		M: 32, Delta: 4, SampleRatio: 0.02, Bits: 16}
	r, err := Learn(spec, ds.Dims, mins, maxs, smp, nil)
	if err != nil {
		t.Fatal(err)
	}
	blk := point.BlockOf(ds.Dims, ds.Points)

	perPoint := testing.AllocsPerRun(3, func() { _ = r.MapChunk(ds.Points, nil) })
	perBlock := testing.AllocsPerRun(3, func() { _ = r.MapBlock(blk, nil) })
	if perBlock <= 0 {
		t.Fatalf("implausible block allocs %v", perBlock)
	}
	ratio := perPoint / perBlock
	t.Logf("map allocs: per-point %.0f, block %.0f, ratio %.1fx", perPoint, perBlock, ratio)
	if ratio < 5 {
		t.Errorf("block map path saves only %.1fx allocations, want >= 5x", ratio)
	}
}
