package plan

import (
	"zskyline/internal/point"
	"zskyline/internal/zorder"
)

// SplitByOwner cuts a group into per-owner groups, one per distinct
// owner(row) value, in first-seen owner order — the shard-aware shuffle
// of the distributed tier's insert path. The input group must carry a
// Z-address column with one row per block row (owners are a function of
// the address, and splitting is exactly when the encode-once invariant
// pays: the column is cut alongside the block, so no shard re-encodes).
// Each output group has Gid set to its owner and owns freshly built
// block and column storage.
func SplitByOwner(g Group, owner func(row int) int) []Group {
	n := g.Block.Len()
	if n == 0 {
		return nil
	}
	type acc struct {
		bb *point.BlockBuilder
		zc zorder.ZCol
	}
	byOwner := map[int]*acc{}
	var order []int
	withZ := g.ZCol.Len() == n && g.ZCol.Words > 0
	for i := 0; i < n; i++ {
		o := owner(i)
		a := byOwner[o]
		if a == nil {
			a = &acc{bb: point.NewBlockBuilder(g.Block.Dims, 0)}
			if withZ {
				a.zc = zorder.ZCol{Words: g.ZCol.Words}
			}
			byOwner[o] = a
			order = append(order, o)
		}
		a.bb.Append(g.Block.Row(i))
		if withZ {
			a.zc.AppendRow(g.ZCol, i)
		}
	}
	out := make([]Group, len(order))
	for i, o := range order {
		a := byOwner[o]
		out[i] = Group{Gid: o, Block: a.bb.Build(), ZCol: a.zc}
	}
	return out
}
