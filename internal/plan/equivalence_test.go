package plan_test

// Cross-executor equivalence: the same dataset and seed must yield the
// identical exact skyline through every substrate — the in-process
// MapReduce simulator (core, SB and ZS), the TCP coordinator/worker
// deployment (dist, over loopback), the shared-memory pool (parallel),
// and the raw plan driver on a LocalExec — all checked against the
// brute-force oracle.

import (
	"context"
	"testing"

	"zskyline/internal/core"
	"zskyline/internal/dist"
	"zskyline/internal/gen"
	"zskyline/internal/metrics"
	"zskyline/internal/parallel"
	"zskyline/internal/plan"
	"zskyline/internal/point"
	"zskyline/internal/seq"
)

func sameSet(t *testing.T, got, want []point.Point, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d points, want %d", label, len(got), len(want))
	}
	g := append([]point.Point(nil), got...)
	w := append([]point.Point(nil), want...)
	point.SortLexicographic(g)
	point.SortLexicographic(w)
	for i := range g {
		if !g[i].Equal(w[i]) {
			t.Fatalf("%s: [%d] = %v, want %v", label, i, g[i], w[i])
		}
	}
}

// quantize rounds coordinates onto a coarse grid, manufacturing heavy
// ties and duplicates.
func quantize(ds *point.Dataset) *point.Dataset {
	for i, p := range ds.Points {
		for k := range p {
			ds.Points[i][k] = float64(int(p[k]*4)) / 4
		}
	}
	return ds
}

// startCluster spins up n loopback TCP workers.
func startCluster(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		ws, err := dist.StartWorker("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ws.Close() })
		addrs[i] = ws.Addr()
	}
	return addrs
}

func coreSkyline(t *testing.T, ds *point.Dataset, local plan.LocalAlgo) []point.Point {
	t.Helper()
	cfg := core.Defaults()
	cfg.Strategy = core.ZDG
	cfg.Local = local
	cfg.M = 8
	cfg.Delta = 3
	cfg.SampleRatio = 0.05
	cfg.Workers = 4
	cfg.Seed = 99
	e, err := core.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sky, _, err := e.Skyline(context.Background(), ds)
	if err != nil {
		t.Fatal(err)
	}
	return sky
}

func distSkyline(t *testing.T, ds *point.Dataset, addrs []string, treeMerge bool) []point.Point {
	t.Helper()
	cfg := dist.DefaultCoordinatorConfig()
	cfg.M = 8
	cfg.SampleRatio = 0.05
	cfg.ChunkSize = 500
	cfg.TreeMerge = treeMerge
	cfg.Seed = 99
	coord, err := dist.NewCoordinator(cfg, addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	sky, _, err := coord.Skyline(context.Background(), ds)
	if err != nil {
		t.Fatal(err)
	}
	return sky
}

func planSkyline(t *testing.T, ds *point.Dataset, strategy plan.Strategy, treeMerge bool) []point.Point {
	t.Helper()
	spec := &plan.Spec{
		Strategy:    strategy,
		Local:       plan.ZS,
		Merge:       plan.MergeZM,
		M:           8,
		Delta:       3,
		SampleRatio: 0.05,
		Bits:        12,
		Seed:        99,
		TreeMerge:   treeMerge,
		MapTasks:    6,
	}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	sky, _, err := plan.Run(context.Background(), spec, ds, plan.NewLocalExec(4), &metrics.Tally{})
	if err != nil {
		t.Fatal(err)
	}
	return sky
}

func TestExecutorsEquivalent(t *testing.T) {
	addrs := startCluster(t, 3)
	cases := []struct {
		name string
		ds   *point.Dataset
	}{
		{"indep", gen.Synthetic(gen.Independent, 3000, 4, 21)},
		{"corr", gen.Synthetic(gen.Correlated, 3000, 4, 22)},
		{"anti", gen.Synthetic(gen.AntiCorrelated, 3000, 4, 23)},
		{"dups", quantize(gen.Synthetic(gen.Independent, 3000, 3, 24))},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want := seq.BruteForce(tc.ds.Points)

			sameSet(t, coreSkyline(t, tc.ds, plan.SB), want, "core/SB")
			sameSet(t, coreSkyline(t, tc.ds, plan.ZS), want, "core/ZS")
			sameSet(t, distSkyline(t, tc.ds, addrs, false), want, "dist")
			sameSet(t, distSkyline(t, tc.ds, addrs, true), want, "dist/tree")

			par, err := parallel.Skyline(context.Background(), tc.ds, parallel.Options{Workers: 4})
			if err != nil {
				t.Fatal(err)
			}
			sameSet(t, par, want, "parallel")

			for _, st := range []plan.Strategy{plan.NaiveZ, plan.ZHG, plan.ZDG} {
				sameSet(t, planSkyline(t, tc.ds, st, false), want, "plan/"+st.String())
			}
			sameSet(t, planSkyline(t, tc.ds, plan.ZDG, true), want, "plan/ZDG/tree")
		})
	}
}
