package plan_test

// Provider × executor equivalence: every dominance relation must yield
// the identical result set through every substrate — the in-process
// MapReduce simulator (core), the TCP coordinator/worker deployment
// (dist), the shared-memory pool (parallel), and the raw plan driver —
// all checked against the per-provider brute-force oracle.

import (
	"context"
	"testing"

	"zskyline/internal/core"
	"zskyline/internal/dist"
	"zskyline/internal/dominance"
	"zskyline/internal/gen"
	"zskyline/internal/metrics"
	"zskyline/internal/parallel"
	"zskyline/internal/plan"
	"zskyline/internal/point"
	"zskyline/internal/seq"
)

// providerDescriptors returns one descriptor of each kind for
// d-dimensional data.
func providerDescriptors(t *testing.T, d int) []dominance.Descriptor {
	t.Helper()
	w1 := make([]float64, d)
	w2 := make([]float64, d)
	for i := range w1 {
		w1[i] = 1
		w2[i] = 1
	}
	w2[0] = 3
	k := d - 1
	if k < 1 {
		k = 1
	}
	descs := []dominance.Descriptor{
		{},
		{Kind: dominance.KindFlex, Weights: [][]float64{w1, w2}},
		{Kind: dominance.KindKDom, K: k},
		{Kind: dominance.KindRobust, Rho: 0.05},
	}
	for _, desc := range descs {
		if _, err := desc.Provider(); err != nil {
			t.Fatal(err)
		}
	}
	return descs
}

func coreSkylineUnder(t *testing.T, ds *point.Dataset, desc dominance.Descriptor, local plan.LocalAlgo) []point.Point {
	t.Helper()
	cfg := core.Defaults()
	cfg.Strategy = core.ZDG
	cfg.Local = local
	cfg.M = 8
	cfg.Delta = 3
	cfg.SampleRatio = 0.05
	cfg.Workers = 4
	cfg.Seed = 99
	cfg.Dominance = desc
	e, err := core.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sky, _, err := e.Skyline(context.Background(), ds)
	if err != nil {
		t.Fatal(err)
	}
	return sky
}

func distSkylineUnder(t *testing.T, ds *point.Dataset, addrs []string, desc dominance.Descriptor) []point.Point {
	t.Helper()
	cfg := dist.DefaultCoordinatorConfig()
	cfg.M = 8
	cfg.SampleRatio = 0.05
	cfg.ChunkSize = 500
	cfg.Seed = 99
	cfg.Dominance = desc
	coord, err := dist.NewCoordinator(cfg, addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	sky, _, err := coord.Skyline(context.Background(), ds)
	if err != nil {
		t.Fatal(err)
	}
	return sky
}

func planSkylineUnder(t *testing.T, ds *point.Dataset, desc dominance.Descriptor, strategy plan.Strategy, local plan.LocalAlgo, merge plan.MergeAlgo) []point.Point {
	t.Helper()
	spec := &plan.Spec{
		Strategy:    strategy,
		Local:       local,
		Merge:       merge,
		M:           8,
		Delta:       3,
		SampleRatio: 0.05,
		Bits:        12,
		Seed:        99,
		MapTasks:    6,
		Dominance:   desc,
	}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	sky, _, err := plan.Run(context.Background(), spec, ds, plan.NewLocalExec(4), &metrics.Tally{})
	if err != nil {
		t.Fatal(err)
	}
	return sky
}

// TestProvidersAcrossExecutors is the provider × executor matrix: each
// relation through core, dist, parallel, and the raw plan driver must
// match the per-provider brute-force oracle, heavy duplicates included.
func TestProvidersAcrossExecutors(t *testing.T) {
	addrs := startCluster(t, 3)
	cases := []struct {
		name string
		ds   *point.Dataset
	}{
		{"anti", gen.Synthetic(gen.AntiCorrelated, 2500, 4, 31)},
		{"dups", quantize(gen.Synthetic(gen.Independent, 2500, 4, 32))},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for _, desc := range providerDescriptors(t, tc.ds.Dims) {
				prov, err := desc.Provider()
				if err != nil {
					t.Fatal(err)
				}
				name := prov.Name()
				want := dominance.BruteForce(prov, tc.ds.Points)

				// The sequential reference must agree with the oracle first.
				sameSet(t, seq.SkylineUnder(prov, tc.ds.Points, nil), want, name+"/seq")

				sameSet(t, coreSkylineUnder(t, tc.ds, desc, plan.SB), want, name+"/core/SB")
				sameSet(t, coreSkylineUnder(t, tc.ds, desc, plan.ZS), want, name+"/core/ZS")
				sameSet(t, distSkylineUnder(t, tc.ds, addrs, desc), want, name+"/dist")

				par, err := parallel.Skyline(context.Background(), tc.ds,
					parallel.Options{Workers: 4, Dominance: desc})
				if err != nil {
					t.Fatal(err)
				}
				sameSet(t, par, want, name+"/parallel")

				for _, st := range []plan.Strategy{plan.NaiveZ, plan.ZHG, plan.ZDG} {
					sameSet(t, planSkylineUnder(t, tc.ds, desc, st, plan.ZS, plan.MergeZM),
						want, name+"/plan/"+st.String())
				}
				sameSet(t, planSkylineUnder(t, tc.ds, desc, plan.ZDG, plan.SB, plan.MergeSB),
					want, name+"/plan/ZDG/SB+SB")
			}
		})
	}
}

// TestNonZStrategiesUnderProviders covers the baselines that do not
// route by Z-address (Grid, Angle, Random) — their partition logic is
// relation-agnostic, so providers must flow through untouched.
func TestNonZStrategiesUnderProviders(t *testing.T) {
	ds := gen.Synthetic(gen.AntiCorrelated, 1500, 3, 33)
	for _, desc := range providerDescriptors(t, ds.Dims) {
		prov, err := desc.Provider()
		if err != nil {
			t.Fatal(err)
		}
		want := dominance.BruteForce(prov, ds.Points)
		for _, st := range []plan.Strategy{plan.Grid, plan.Angle, plan.Random} {
			sameSet(t, planSkylineUnder(t, ds, desc, st, plan.SB, plan.MergeZS),
				want, prov.Name()+"/plan/"+st.String())
		}
	}
}
