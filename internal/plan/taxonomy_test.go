package plan_test

// Cross-executor span taxonomy: a traced run must emit the same
// top-level phase spans — learn, map, local-skyline, merge/round-1 —
// whether it executes on the in-process MapReduce simulator (core),
// the TCP coordinator/worker deployment (dist, over loopback), or the
// shared-memory pool (parallel). The uniform taxonomy is what makes
// trace reports comparable across deployment substrates.

import (
	"context"
	"testing"

	"zskyline/internal/core"
	"zskyline/internal/dist"
	"zskyline/internal/gen"
	"zskyline/internal/obs"
	"zskyline/internal/parallel"
)

// phaseNames returns the names of the root span's direct children in
// start order.
func phaseNames(tr *obs.Trace) []string {
	children := tr.Root().Children()
	names := make([]string, len(children))
	for i, c := range children {
		names[i] = c.Name()
	}
	return names
}

func assertTaxonomy(t *testing.T, label string, got []string) {
	t.Helper()
	want := []string{"learn", "map", "local-skyline", "merge/round-1"}
	if len(got) != len(want) {
		t.Fatalf("%s: top-level spans = %v, want %v", label, got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: top-level spans = %v, want %v", label, got, want)
		}
	}
}

func TestSpanTaxonomyUniformAcrossExecutors(t *testing.T) {
	ds := gen.Synthetic(gen.Independent, 2000, 4, 7)

	// Core: fused simulator — the MapReducer reconstructs map and
	// local-skyline spans from the job's phase walls.
	coreTr := obs.NewTrace("core")
	{
		cfg := core.Defaults()
		cfg.Strategy = core.ZDG
		cfg.M = 8
		cfg.SampleRatio = 0.05
		cfg.Workers = 4
		cfg.Seed = 7
		eng, err := core.NewEngine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ctx := obs.ContextWithTrace(context.Background(), coreTr)
		if _, _, err := eng.Skyline(ctx, gen.Synthetic(gen.Independent, 2000, 4, 7)); err != nil {
			t.Fatal(err)
		}
		coreTr.Finish()
	}

	// Dist: real RPC over loopback workers.
	distTr := obs.NewTrace("dist")
	{
		addrs := startCluster(t, 2)
		cfg := dist.DefaultCoordinatorConfig()
		cfg.M = 8
		cfg.SampleRatio = 0.05
		cfg.Seed = 7
		coord, err := dist.NewCoordinator(cfg, addrs)
		if err != nil {
			t.Fatal(err)
		}
		defer coord.Close()
		ctx := obs.ContextWithTrace(context.Background(), distTr)
		if _, _, err := coord.Skyline(ctx, ds); err != nil {
			t.Fatal(err)
		}
		distTr.Finish()
	}

	// Parallel: shared-memory pool. Workers=2 keeps the pairwise
	// reduction to a single round, matching the other executors.
	parTr := obs.NewTrace("parallel")
	{
		ctx := obs.ContextWithTrace(context.Background(), parTr)
		if _, err := parallel.Skyline(ctx, ds, parallel.Options{Workers: 2}); err != nil {
			t.Fatal(err)
		}
		parTr.Finish()
	}

	coreNames := phaseNames(coreTr)
	distNames := phaseNames(distTr)
	parNames := phaseNames(parTr)
	assertTaxonomy(t, "core", coreNames)
	assertTaxonomy(t, "dist", distNames)
	assertTaxonomy(t, "parallel", parNames)

	// The dist run's RPC spans must nest inside the phases, never at
	// the top level; spot-check that the merge phase carries them.
	var mergeSpan *obs.Span
	for _, c := range distTr.Root().Children() {
		if c.Name() == "merge/round-1" {
			mergeSpan = c
		}
	}
	found := false
	for _, c := range mergeSpan.Children() {
		if c.Name() == "rpc/Worker.MergeGroups" {
			found = true
		}
	}
	if !found {
		t.Fatalf("dist merge/round-1 has no rpc/Worker.MergeGroups child; children: %v",
			spanNames(mergeSpan.Children()))
	}
}

func spanNames(spans []*obs.Span) []string {
	names := make([]string, len(spans))
	for i, s := range spans {
		names[i] = s.Name()
	}
	return names
}
