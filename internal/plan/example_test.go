package plan_test

import (
	"context"
	"fmt"
	"sort"

	"zskyline/internal/plan"
	"zskyline/internal/point"
)

// Run executes the paper's three-phase pipeline on any Executor; the
// shared-memory LocalExec is the simplest substrate. The same Spec on
// the MapReduce simulator or the TCP coordinator yields the same
// skyline — the phase semantics live in plan, the Executor only
// decides placement and fault handling.
func ExampleRun() {
	ds, err := point.NewDataset(2, []point.Point{
		{1, 9}, {2, 2}, {9, 1}, {5, 5}, {3, 8}, {8, 3}, {4, 4}, {6, 7},
	})
	if err != nil {
		fmt.Println("dataset:", err)
		return
	}
	spec := &plan.Spec{
		Strategy: plan.ZDG, Local: plan.ZS, Merge: plan.MergeZM,
		M: 2, Delta: 2, SampleRatio: 1, Bits: 8, Seed: 1,
	}
	sky, _, err := plan.Run(context.Background(), spec, ds, plan.NewLocalExec(2), nil)
	if err != nil {
		fmt.Println("run:", err)
		return
	}
	sort.Slice(sky, func(i, j int) bool { return sky[i][0] < sky[j][0] })
	for _, p := range sky {
		fmt.Println(p)
	}
	// Output:
	// (1, 9)
	// (2, 2)
	// (9, 1)
}

// RunSource drives the same pipeline from a streaming point.Source, so
// the dataset never has to exist as one []point.Point in memory.
func ExampleRunSource() {
	pts := []point.Point{{1, 9}, {2, 2}, {9, 1}, {5, 5}, {3, 8}, {8, 3}}
	spec := &plan.Spec{
		Strategy: plan.ZDG, Local: plan.ZS, Merge: plan.MergeZM,
		M: 2, Delta: 2, SampleRatio: 1, Bits: 8, Seed: 1, ChunkSize: 2,
	}
	src := point.NewSliceSource(2, pts)
	sky, _, err := plan.RunSource(context.Background(), spec, src, plan.NewLocalExec(2), nil)
	if err != nil {
		fmt.Println("run:", err)
		return
	}
	sort.Slice(sky, func(i, j int) bool { return sky[i][0] < sky[j][0] })
	fmt.Println(len(sky), "skyline points:", sky)
	// Output:
	// 3 skyline points: [(1, 9) (2, 2) (9, 1)]
}
