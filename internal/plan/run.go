package plan

import (
	"context"
	"fmt"
	"io"
	"time"

	"zskyline/internal/dominance"
	"zskyline/internal/metrics"
	"zskyline/internal/obs"
	"zskyline/internal/point"
	"zskyline/internal/sample"
)

// Report describes one pipeline run at the plan level: the phase
// numbers every substrate shares. Substrates wrap it with their own
// execution statistics (job stats, worker counts).
type Report struct {
	// Phase wall-clock durations. Preprocess covers ingest, sampling,
	// rule learning, and the broadcast.
	Preprocess time.Duration
	Phase2     time.Duration
	Phase3     time.Duration
	Total      time.Duration

	// SampleSize is the number of sampled points; SampleSkySize the
	// size of the sample skyline loaded into every mapper.
	SampleSize    int
	SampleSkySize int

	// Groups is the number of groups (= phase-2 reducers); Partitions
	// the number of Z-partitions before grouping; PrunedPartitions how
	// many were dropped as fully dominated.
	Groups           int
	Partitions       int
	PrunedPartitions int

	// Filtered counts input points dropped by the SZB-tree filter or by
	// pruned partitions before the shuffle.
	Filtered int64
	// Candidates is the phase-2 output size; PerGroupCandidates its
	// per-group breakdown (indexed by gid).
	Candidates         int
	PerGroupCandidates []int
	// SkylineSize is |S|.
	SkylineSize int
}

// Run executes the full three-phase pipeline on ex over an in-memory
// dataset. It is RunSource over the dataset's block adapter.
func Run(ctx context.Context, spec *Spec, ds *point.Dataset, ex Executor, tally *metrics.Tally) ([]point.Point, *Report, error) {
	if ds == nil || ds.Len() == 0 {
		return nil, &Report{}, nil
	}
	return RunSource(ctx, spec, point.NewDatasetSource(ds), ex, tally)
}

// RunSource executes the full three-phase pipeline on ex: drain src
// into contiguous blocks (folding bounds in the same pass), learn the
// rule from a sample, map/combine/reduce to per-group skyline
// candidates, and merge them into the exact global skyline.
//
// When ctx carries an obs trace (obs.ContextWithTrace), RunSource
// emits the library's uniform span taxonomy — learn, map,
// local-skyline, and merge/round-N — under the context's current span,
// so every substrate produces structurally identical trace reports.
func RunSource(ctx context.Context, spec *Spec, src point.Source, ex Executor, tally *metrics.Tally) ([]point.Point, *Report, error) {
	rep := &Report{}
	if src == nil {
		return nil, rep, nil
	}
	total := time.Now()

	// ---- Phase 1: preprocessing on the master ----
	learnSpan, lctx := obs.StartSpan(ctx, "learn")
	t0 := time.Now()
	blocks, mins, maxs, n, err := ingest(src, spec)
	if err != nil {
		learnSpan.End()
		return nil, nil, err
	}
	if n == 0 {
		learnSpan.End()
		return nil, rep, nil
	}
	rows := make([]point.Point, 0, n)
	for _, b := range blocks {
		rows = b.AppendPoints(rows)
	}
	smp, err := sample.Ratio(rows, spec.SampleRatio, spec.Seed)
	if err != nil {
		learnSpan.End()
		return nil, nil, err
	}
	rep.SampleSize = len(smp)
	r, err := Learn(spec, src.Dims(), mins, maxs, smp, tally)
	if err != nil {
		learnSpan.End()
		return nil, nil, err
	}
	if err := ex.Broadcast(lctx, r); err != nil {
		learnSpan.End()
		return nil, nil, err
	}
	rep.Preprocess = time.Since(t0)
	rep.Groups = r.groups
	rep.Partitions = r.parts
	rep.PrunedPartitions = r.pruned
	rep.SampleSkySize = r.skySize
	learnSpan.SetAttr("strategy", spec.Strategy)
	learnSpan.SetAttr("points", n)
	learnSpan.SetAttr("sample", rep.SampleSize)
	learnSpan.SetAttr("sample_skyline", rep.SampleSkySize)
	learnSpan.SetAttr("groups", rep.Groups)
	learnSpan.SetAttr("partitions", rep.Partitions)
	learnSpan.SetAttr("pruned", rep.PrunedPartitions)
	learnSpan.End()

	// ---- Phase 2: compute skyline candidates ----
	t1 := time.Now()
	groups, filtered, err := runPhase2(ctx, spec, r, blocks, ex, tally)
	if err != nil {
		return nil, nil, err
	}
	rep.Phase2 = time.Since(t1)
	rep.Filtered = filtered
	perGroup := make([]int, r.groups)
	for _, g := range groups {
		rep.Candidates += g.Len()
		if g.Gid >= 0 && g.Gid < r.groups {
			perGroup[g.Gid] += g.Len()
		}
	}
	rep.PerGroupCandidates = perGroup

	// ---- Phase 3: merge skyline candidates ----
	t2 := time.Now()
	sky, err := MergePhase(ctx, ex, r, groups, spec.TreeMerge, tally)
	if err != nil {
		return nil, nil, err
	}
	sky = verifyCandidates(ctx, r, sky, blocks, tally)
	rep.Phase3 = time.Since(t2)
	rep.SkylineSize = len(sky)
	rep.Total = time.Since(total)
	if sp := obs.SpanFrom(ctx); sp != nil {
		if id := obs.RequestIDFrom(ctx); id != "" {
			sp.SetAttr("request_id", id)
		}
		sp.SetAttr("points", n)
		sp.SetAttr("skyline", rep.SkylineSize)
		sp.SetAttr("candidates", rep.Candidates)
		sp.SetAttr("candidate_balance", metrics.NewBalance(rep.PerGroupCandidates).String())
	}
	return sky, rep, nil
}

// verifyCandidates closes the pipeline for non-transitive dominance
// relations: local and merge phases then produce candidate supersets
// (an eliminated point can still dominate a candidate), so every
// candidate is retested against the full ingested dataset. Elimination
// cites a real dataset point, which is sound under any irreflexive
// relation; candidates are compacted copies, so their own source rows
// are merely coordinate-equal and never self-eliminate. Transitive
// relations (Pareto included) return sky unchanged.
func verifyCandidates(ctx context.Context, r *Rule, sky []point.Point, blocks []point.Block, tally *metrics.Tally) []point.Point {
	if r.pareto() || r.caps.Transitive || len(sky) == 0 {
		return sky
	}
	sp, _ := obs.StartSpan(ctx, "verify")
	sp.SetAttr("candidates", len(sky))
	cand := point.BlockOf(r.dims, sky)
	for _, b := range blocks {
		cand = dominance.FilterBlock(r.prov, cand, b, tally)
	}
	sp.SetAttr("skyline", cand.Len())
	sp.End()
	return cand.Points()
}

// ingest drains the source into blocks, folding the running bounds in
// the same pass. The drain batch size follows the spec's ChunkSize so
// streaming sources hand back blocks already shaped for the map phase.
func ingest(src point.Source, spec *Spec) (blocks []point.Block, mins, maxs []float64, n int, err error) {
	dims := src.Dims()
	if dims <= 0 {
		return nil, nil, nil, 0, fmt.Errorf("plan: source has no dimensionality")
	}
	batch := spec.ChunkSize
	if batch <= 0 {
		batch = 1 << 16
	}
	for {
		b, err := src.Next(batch)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, nil, nil, 0, err
		}
		if b.Len() == 0 {
			continue
		}
		if b.Dims != dims {
			return nil, nil, nil, 0, fmt.Errorf("plan: source block has %d dims, want %d", b.Dims, dims)
		}
		mins, maxs = b.UpdateBounds(mins, maxs)
		blocks = append(blocks, b)
		n += b.Len()
	}
	return blocks, mins, maxs, n, nil
}

// runPhase2 prefers the substrate's fused map-reduce when offered,
// falling back to map tasks + coordinator-side shuffle + reduce tasks.
// The split path emits the taxonomy's map and local-skyline spans; a
// fused MapReducer is responsible for emitting them itself (see the
// interface contract).
func runPhase2(ctx context.Context, spec *Spec, r *Rule, blocks []point.Block, ex Executor, tally *metrics.Tally) ([]Group, int64, error) {
	if mr, ok := ex.(MapReducer); ok {
		return mr.MapReduce(ctx, r, blocks, tally)
	}
	chunks := spec.chunkBlocks(blocks)
	mapSpan, mctx := obs.StartSpan(ctx, "map")
	mapSpan.SetAttr("tasks", len(chunks))
	outs, err := ex.RunMaps(mctx, r, chunks, tally)
	if err != nil {
		mapSpan.End()
		return nil, 0, err
	}
	groups, filtered := Shuffle(outs)
	mapSpan.SetAttr("filtered", filtered)
	mapSpan.End()
	redSpan, rctx := obs.StartSpan(ctx, "local-skyline")
	redSpan.SetAttr("groups", len(groups))
	groups, err = ex.RunReduces(rctx, r, groups, tally)
	if err != nil {
		redSpan.End()
		return nil, 0, err
	}
	candidates := 0
	for _, g := range groups {
		candidates += g.Len()
	}
	redSpan.SetAttr("candidates", candidates)
	redSpan.End()
	return groups, filtered, nil
}

// MergePhase is phase 3 (§5.3): one merge task over all candidate
// groups, or — with tree set — rounds of pairwise merge tasks until a
// single result remains, checking ctx between rounds. Each round is
// one merge/round-N span.
func MergePhase(ctx context.Context, ex Executor, r *Rule, groups []Group, tree bool, tally *metrics.Tally) ([]point.Point, error) {
	if len(groups) == 0 {
		return nil, nil
	}
	if !tree || len(groups) <= 2 {
		sp, mctx := obs.StartSpan(ctx, "merge/round-1")
		sp.SetAttr("tasks", 1)
		sp.SetAttr("groups", len(groups))
		outs, err := ex.RunMerges(mctx, r, [][]Group{groups}, tally)
		if err != nil {
			sp.End()
			return nil, err
		}
		sp.SetAttr("skyline", outs[0].Len())
		sp.End()
		return outs[0].Block.Points(), nil
	}
	for round := 1; len(groups) > 1; round++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		tasks := make([][]Group, 0, (len(groups)+1)/2)
		for i := 0; i+1 < len(groups); i += 2 {
			tasks = append(tasks, []Group{groups[i], groups[i+1]})
		}
		sp, mctx := obs.StartSpan(ctx, fmt.Sprintf("merge/round-%d", round))
		sp.SetAttr("tasks", len(tasks))
		sp.SetAttr("groups", len(groups))
		outs, err := ex.RunMerges(mctx, r, tasks, tally)
		if err != nil {
			sp.End()
			return nil, err
		}
		sp.End()
		// Merged groups keep their Z-address columns (when the executor
		// carries them) so the next round's merge reuses every address.
		next := make([]Group, 0, len(outs)+1)
		for i, g := range outs {
			g.Gid = i
			next = append(next, g)
		}
		if len(groups)%2 == 1 {
			last := groups[len(groups)-1]
			last.Gid = len(next)
			next = append(next, last)
		}
		groups = next
	}
	return groups[0].Points(), nil
}
