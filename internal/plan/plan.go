// Package plan holds the paper's three-phase skyline pipeline exactly
// once, independent of where it runs. The phase logic — learn the
// partitioning rule from a sample (§5.1), filter/route/combine points
// in mappers (§5.2, Algorithm 3), reduce each group to its skyline
// candidates, and merge candidates into the global skyline (§5.3,
// Algorithm 4) — lives here; the execution substrates supply only an
// Executor that says where tasks run:
//
//   - internal/core adapts the in-process MapReduce simulator
//     (combiner + shuffle accounting, stragglers, faults);
//   - internal/dist adapts a TCP coordinator and framed-transport
//     workers (internal/transport);
//   - internal/parallel adapts a shared-memory goroutine pool
//     (plan.LocalExec).
//
// A Rule is the learned phase-1 artifact. It is directly executable
// in-process and, for the Z-order strategies, serializable (RuleData)
// so a coordinator can broadcast it to remote workers — the paper's
// distributed-cache step.
package plan

import (
	"fmt"

	"zskyline/internal/dominance"
	"zskyline/internal/point"
	"zskyline/internal/zbtree"
	"zskyline/internal/zorder"
)

// Strategy selects the partitioning/grouping scheme of phase 1.
type Strategy int

// The partitioning strategies of the paper's evaluation (§6.1).
const (
	// Grid is classic equal-width grid partitioning [9][11].
	Grid Strategy = iota
	// Angle is angle-based partitioning [8].
	Angle
	// Random is hash partitioning [18].
	Random
	// NaiveZ is plain Z-order equal-frequency partitioning (§4.1).
	NaiveZ
	// ZHG is Z-order partitioning plus Heuristic Grouping (§4.2).
	ZHG
	// ZDG is Z-order partitioning plus Dominance-based Grouping (§4.3),
	// the paper's headline strategy.
	ZDG
)

// String names the strategy as the paper does.
func (s Strategy) String() string {
	switch s {
	case Grid:
		return "Grid"
	case Angle:
		return "Angle"
	case Random:
		return "Random"
	case NaiveZ:
		return "Naive-Z"
	case ZHG:
		return "ZHG"
	case ZDG:
		return "ZDG"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// UsesZOrder reports whether the strategy routes by Z-address and may
// apply the SZB-tree mapper filter of Algorithm 3.
func (s Strategy) UsesZOrder() bool { return s == NaiveZ || s == ZHG || s == ZDG }

// LocalAlgo selects the per-group skyline algorithm of phase 2.
type LocalAlgo int

// Local skyline algorithms (§6.1).
const (
	// SB sorts by coordinate sum then filters (block-nested-loops).
	SB LocalAlgo = iota
	// ZS is Z-search over a ZB-tree, the state of the art.
	ZS
)

// String names the local algorithm.
func (a LocalAlgo) String() string {
	if a == SB {
		return "SB"
	}
	return "ZS"
}

// MergeAlgo selects the phase-3 candidate merging algorithm.
type MergeAlgo int

// Merge algorithms compared in §6.3.
const (
	// MergeZM is the paper's Z-merge (Algorithm 4).
	MergeZM MergeAlgo = iota
	// MergeZS recomputes the skyline of all candidates with Z-search.
	MergeZS
	// MergeSB recomputes it with the sort-based filter.
	MergeSB
)

// String names the merge algorithm.
func (a MergeAlgo) String() string {
	switch a {
	case MergeZM:
		return "ZM"
	case MergeZS:
		return "ZS"
	default:
		return "SB"
	}
}

// Spec parameterizes one pipeline run: what to compute, not where.
// The zero value is not valid; substrates fill it from their configs.
type Spec struct {
	// Strategy is the phase-1 partitioning scheme.
	Strategy Strategy
	// Local is the per-group skyline algorithm of phase 2.
	Local LocalAlgo
	// Merge is the phase-3 candidate merging algorithm.
	Merge MergeAlgo
	// M is the target number of groups (the paper's M); also the grid /
	// angle / random partition count for the baselines.
	M int
	// Delta is the partition expansion factor delta >= 1: Z-order
	// strategies first cut the curve into M*Delta partitions (§4.2).
	Delta int
	// SampleRatio is the reservoir sampling ratio of phase 1.
	SampleRatio float64
	// Bits is the Z-order grid resolution per dimension.
	Bits int
	// Fanout is the ZB-tree node capacity; 0 selects the default.
	Fanout int
	// Seed drives sampling (and nothing else; the pipeline is
	// deterministic given data and seed).
	Seed int64
	// DisableSZBFilter turns off the Algorithm 3 mapper filter against
	// the sample-skyline ZB-tree (ablation experiments).
	DisableSZBFilter bool
	// TreeMerge runs phase 3 as rounds of pairwise merge tasks instead
	// of the paper's single merge reducer.
	TreeMerge bool
	// MapTasks is the phase-2 map task count when ChunkSize is zero.
	MapTasks int
	// ChunkSize, when positive, bounds the points per map task and
	// overrides MapTasks — the chunking the RPC substrate uses.
	ChunkSize int
	// Dominance selects the dominance relation the pipeline computes
	// under; the zero value is classic Pareto dominance. Learn consults
	// the provider's capabilities and disables the Pareto-derived
	// optimizations (SZB-tree mapper filter, dominance-based partition
	// grouping) that the relation does not keep sound.
	Dominance dominance.Descriptor
}

// Validate checks the spec's algorithmic parameters.
func (s *Spec) Validate() error {
	if s.M < 1 {
		return fmt.Errorf("plan: M must be >= 1, got %d", s.M)
	}
	if s.Delta < 1 {
		return fmt.Errorf("plan: Delta must be >= 1, got %d", s.Delta)
	}
	if s.SampleRatio <= 0 || s.SampleRatio > 1 {
		return fmt.Errorf("plan: SampleRatio must be in (0,1], got %v", s.SampleRatio)
	}
	if s.Bits < 1 || s.Bits > zorder.MaxBits {
		return fmt.Errorf("plan: Bits must be in [1,%d], got %d", zorder.MaxBits, s.Bits)
	}
	if _, err := s.Dominance.Provider(); err != nil {
		return err
	}
	return nil
}

// fanout resolves the ZB-tree fanout default.
func (s *Spec) fanout() int {
	if s.Fanout <= 0 {
		return zbtree.DefaultFanout
	}
	return s.Fanout
}

// Group is one group's worth of routed points or skyline candidates —
// the unit phase-2 reducers and phase-3 merge tasks operate on. The
// payload is a contiguous Block, so a group crosses an executor
// boundary (goroutine, simulator shuffle, TCP) as one flat array.
//
// ZCol is the group's Z-address column on the encode-once path:
// when non-empty it holds one address per block row, encoded with the
// rule's bounds encoder (Rule.Encoder) at the map phase, and travels
// with the block through shuffle, reduce, and merge so no later phase
// re-encodes. An empty ZCol is always legal — consumers fall back to
// encoding locally — but a non-empty one MUST satisfy the invariant
// (row count equal to the block's, addresses from the rule's bounds
// encoder); Shuffle and the kernels check shape and drop columns that
// do not line up.
type Group struct {
	Gid   int
	Block point.Block
	ZCol  zorder.ZCol
}

// NewGroup copies pts (each dims wide) into a block-backed group — the
// bridge from view-based code onto the block data plane.
func NewGroup(gid, dims int, pts []point.Point) Group {
	return Group{Gid: gid, Block: point.BlockOf(dims, pts)}
}

// Len returns the group's row count.
func (g Group) Len() int { return g.Block.Len() }

// Points materializes zero-copy row views of the group's block.
func (g Group) Points() []point.Point { return g.Block.Points() }

// MapOutput is one map task's result: the chunk-local skyline
// candidates per group, plus how many input points the task dropped
// (SZB-tree filter or pruned partitions).
type MapOutput struct {
	Groups   []Group
	Filtered int64
}

// Shuffle gathers map outputs into per-group candidate blocks in
// deterministic first-seen group order — the coordinator-side shuffle
// of the RPC and shared-memory substrates — and sums the filter drops.
// Z-address columns are concatenated alongside their blocks; a group
// whose contributions do not all carry a consistent column loses it
// (the reduce kernel then re-encodes, trading speed, never
// correctness).
func Shuffle(outs []MapOutput) ([]Group, int64) {
	type acc struct {
		bb *point.BlockBuilder
		zc zorder.ZCol
		ok bool // every contribution so far carried a matching column
	}
	byGroup := map[int]*acc{}
	var order []int
	var filtered int64
	for _, out := range outs {
		filtered += out.Filtered
		for _, g := range out.Groups {
			if g.Block.Dims <= 0 {
				continue
			}
			a, seen := byGroup[g.Gid]
			if !seen {
				a = &acc{bb: point.NewBlockBuilder(g.Block.Dims, g.Block.Len()),
					zc: zorder.ZCol{Words: g.ZCol.Words}, ok: g.ZCol.Words > 0}
				byGroup[g.Gid] = a
				order = append(order, g.Gid)
			}
			a.bb.AppendBlock(g.Block)
			if a.ok && g.ZCol.Words == a.zc.Words && g.ZCol.Len() == g.Block.Len() {
				a.zc.AppendCol(g.ZCol)
			} else {
				a.ok = false
			}
		}
	}
	groups := make([]Group, len(order))
	for i, gid := range order {
		a := byGroup[gid]
		groups[i] = Group{Gid: gid, Block: a.bb.Build()}
		if a.ok {
			groups[i].ZCol = a.zc
		}
	}
	return groups, filtered
}

// SplitN cuts points into n near-equal contiguous chunks (at least one
// point per chunk; fewer chunks when the input is small).
func SplitN(pts []point.Point, n int) [][]point.Point {
	if n < 1 {
		n = 1
	}
	if n > len(pts) {
		n = len(pts)
	}
	if n == 0 {
		return nil
	}
	out := make([][]point.Point, 0, n)
	for i := 0; i < n; i++ {
		lo := i * len(pts) / n
		hi := (i + 1) * len(pts) / n
		if lo < hi {
			out = append(out, pts[lo:hi:hi])
		}
	}
	return out
}

// ChunkBy cuts points into contiguous chunks of at most size points.
func ChunkBy(pts []point.Point, size int) [][]point.Point {
	if size < 1 {
		size = 1
	}
	var out [][]point.Point
	for lo := 0; lo < len(pts); lo += size {
		hi := lo + size
		if hi > len(pts) {
			hi = len(pts)
		}
		out = append(out, pts[lo:hi:hi])
	}
	return out
}

// chunkBlocks applies the spec's chunking policy to drained blocks
// without copying: explicit ChunkSize re-slices each block to at most
// ChunkSize rows; otherwise the blocks are cut into approximately
// MapTasks near-equal chunks. Chunk boundaries never cross source
// block boundaries, so every chunk stays a contiguous view.
func (s *Spec) chunkBlocks(blocks []point.Block) []point.Block {
	var out []point.Block
	if s.ChunkSize > 0 {
		for _, b := range blocks {
			out = append(out, b.ChunkBy(s.ChunkSize)...)
		}
		return out
	}
	n := s.MapTasks
	if n <= 0 {
		n = 8
	}
	if len(blocks) == 1 {
		return blocks[0].SplitN(n)
	}
	var total int
	for _, b := range blocks {
		total += b.Len()
	}
	if total == 0 {
		return nil
	}
	target := (total + n - 1) / n
	for _, b := range blocks {
		out = append(out, b.ChunkBy(target)...)
	}
	return out
}
