package plan

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"zskyline/internal/metrics"
	"zskyline/internal/point"
)

// Executor runs the pipeline's tasks on some substrate. Implementations
// decide placement, transport, and fault handling; the phase semantics
// stay in plan. Bulk data crosses the interface as point.Blocks —
// contiguous batches that substrates can ship as single payloads.
//
// Error contract: the driver (Run, RunSource, MergePhase) returns
// executor errors unwrapped, so typed sentinels an implementation
// exposes stay matchable with errors.Is at the API boundary — the
// dist executor's ErrClusterDown is the worked example. Transient
// substrate faults (lost connections, timed-out calls, worker
// restarts) are the executor's to absorb: retry, failover, and
// re-broadcast happen below this interface, and an error returned
// from a Run* method means the phase is unrecoverable, not merely
// that a task needed a second attempt. Every task is a deterministic
// function of the Rule and its input, so executors may freely re-run
// or duplicate tasks without changing the answer. Implementations
// must also honor ctx cancellation and return ctx.Err() promptly.
type Executor interface {
	// Broadcast installs the rule wherever tasks will run (the paper's
	// distributed-cache step). In-process executors may no-op.
	Broadcast(ctx context.Context, r *Rule) error
	// RunMaps executes r.MapBlock over each chunk.
	RunMaps(ctx context.Context, r *Rule, chunks []point.Block, tally *metrics.Tally) ([]MapOutput, error)
	// RunReduces executes r.LocalSkylineGroup over each group, preserving
	// group order and ids.
	RunReduces(ctx context.Context, r *Rule, groups []Group, tally *metrics.Tally) ([]Group, error)
	// RunMerges executes r.MergeGroupsZ once per task, preserving task
	// order. Results are Groups so the merged candidates keep their
	// Z-address columns across tree-merge rounds; executors that cannot
	// carry a column may return groups without one.
	RunMerges(ctx context.Context, r *Rule, tasks [][]Group, tally *metrics.Tally) ([]Group, error)
}

// MapReducer is an optional Executor refinement for substrates with a
// native shuffle (the MapReduce simulator): one fused call replaces
// RunMaps + Shuffle + RunReduces for phase 2, so the substrate keeps
// its own combiner and shuffle accounting. Groups must come back in
// deterministic order with their candidate points; filtered is the
// mapper-side drop count.
//
// Observability contract: because the fused call bypasses runPhase2's
// span emission, implementations must attach the taxonomy's "map" and
// "local-skyline" spans to ctx's current span themselves (e.g. with
// Span.ChildAt from measured phase walls), so traces stay structurally
// identical across substrates.
type MapReducer interface {
	MapReduce(ctx context.Context, r *Rule, chunks []point.Block, tally *metrics.Tally) (groups []Group, filtered int64, err error)
}

// LocalExec runs tasks on a bounded pool of goroutines in-process —
// the shared-memory substrate.
type LocalExec struct {
	workers int
}

// NewLocalExec builds a pool executor; workers <= 0 selects GOMAXPROCS.
func NewLocalExec(workers int) *LocalExec {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &LocalExec{workers: workers}
}

// Broadcast is a no-op in-process.
func (ex *LocalExec) Broadcast(ctx context.Context, _ *Rule) error { return ctx.Err() }

// run fans f over n indices with bounded concurrency. Admission stops
// the moment ctx is done — a task waiting for a pool slot is never
// dispatched after cancellation — and a panic inside f is recovered
// into the returned error instead of killing the process.
func (ex *LocalExec) run(ctx context.Context, n int, f func(i int)) error {
	sem := make(chan struct{}, ex.workers)
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	setErr := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	for i := 0; i < n; i++ {
		// The explicit check keeps admission-stop deterministic: a select
		// with both channels ready picks randomly.
		if err := ctx.Err(); err != nil {
			wg.Wait()
			setErr(err)
			return firstErr
		}
		select {
		case <-ctx.Done():
			wg.Wait()
			setErr(ctx.Err())
			return firstErr
		case sem <- struct{}{}:
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			defer func() {
				if p := recover(); p != nil {
					setErr(fmt.Errorf("plan: task %d panicked: %v", i, p))
				}
			}()
			f(i)
		}(i)
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	return firstErr
}

// RunMaps implements Executor.
func (ex *LocalExec) RunMaps(ctx context.Context, r *Rule, chunks []point.Block, tally *metrics.Tally) ([]MapOutput, error) {
	outs := make([]MapOutput, len(chunks))
	err := ex.run(ctx, len(chunks), func(i int) {
		outs[i] = r.MapBlock(chunks[i], tally)
	})
	return outs, err
}

// RunReduces implements Executor.
func (ex *LocalExec) RunReduces(ctx context.Context, r *Rule, groups []Group, tally *metrics.Tally) ([]Group, error) {
	outs := make([]Group, len(groups))
	err := ex.run(ctx, len(groups), func(i int) {
		outs[i] = r.LocalSkylineGroup(groups[i], tally)
	})
	return outs, err
}

// RunMerges implements Executor.
func (ex *LocalExec) RunMerges(ctx context.Context, r *Rule, tasks [][]Group, tally *metrics.Tally) ([]Group, error) {
	outs := make([]Group, len(tasks))
	err := ex.run(ctx, len(tasks), func(i int) {
		outs[i] = r.MergeGroupsZ(tasks[i], tally)
	})
	return outs, err
}
