package plan

import (
	"context"
	"runtime"
	"sync"

	"zskyline/internal/metrics"
	"zskyline/internal/point"
)

// Executor runs the pipeline's tasks on some substrate. Implementations
// decide placement, transport, and fault handling; the phase semantics
// stay in plan.
type Executor interface {
	// Broadcast installs the rule wherever tasks will run (the paper's
	// distributed-cache step). In-process executors may no-op.
	Broadcast(ctx context.Context, r *Rule) error
	// RunMaps executes r.MapChunk over each chunk.
	RunMaps(ctx context.Context, r *Rule, chunks [][]point.Point, tally *metrics.Tally) ([]MapOutput, error)
	// RunReduces executes r.LocalSkyline over each group, preserving
	// group order and ids.
	RunReduces(ctx context.Context, r *Rule, groups []Group, tally *metrics.Tally) ([]Group, error)
	// RunMerges executes r.MergeGroups once per task, preserving task
	// order.
	RunMerges(ctx context.Context, r *Rule, tasks [][]Group, tally *metrics.Tally) ([][]point.Point, error)
}

// MapReducer is an optional Executor refinement for substrates with a
// native shuffle (the MapReduce simulator): one fused call replaces
// RunMaps + Shuffle + RunReduces for phase 2, so the substrate keeps
// its own combiner and shuffle accounting. Groups must come back in
// deterministic order with their candidate points; filtered is the
// mapper-side drop count.
//
// Observability contract: because the fused call bypasses runPhase2's
// span emission, implementations must attach the taxonomy's "map" and
// "local-skyline" spans to ctx's current span themselves (e.g. with
// Span.ChildAt from measured phase walls), so traces stay structurally
// identical across substrates.
type MapReducer interface {
	MapReduce(ctx context.Context, r *Rule, pts []point.Point, tally *metrics.Tally) (groups []Group, filtered int64, err error)
}

// LocalExec runs tasks on a bounded pool of goroutines in-process —
// the shared-memory substrate.
type LocalExec struct {
	workers int
}

// NewLocalExec builds a pool executor; workers <= 0 selects GOMAXPROCS.
func NewLocalExec(workers int) *LocalExec {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &LocalExec{workers: workers}
}

// Broadcast is a no-op in-process.
func (ex *LocalExec) Broadcast(ctx context.Context, _ *Rule) error { return ctx.Err() }

// run fans f over n indices with bounded concurrency, checking ctx
// before dispatching each task.
func (ex *LocalExec) run(ctx context.Context, n int, f func(i int)) error {
	sem := make(chan struct{}, ex.workers)
	var wg sync.WaitGroup
	var err error
	for i := 0; i < n; i++ {
		if err = ctx.Err(); err != nil {
			break
		}
		sem <- struct{}{}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			f(i)
		}(i)
	}
	wg.Wait()
	return err
}

// RunMaps implements Executor.
func (ex *LocalExec) RunMaps(ctx context.Context, r *Rule, chunks [][]point.Point, tally *metrics.Tally) ([]MapOutput, error) {
	outs := make([]MapOutput, len(chunks))
	err := ex.run(ctx, len(chunks), func(i int) {
		outs[i] = r.MapChunk(chunks[i], tally)
	})
	return outs, err
}

// RunReduces implements Executor.
func (ex *LocalExec) RunReduces(ctx context.Context, r *Rule, groups []Group, tally *metrics.Tally) ([]Group, error) {
	outs := make([]Group, len(groups))
	err := ex.run(ctx, len(groups), func(i int) {
		outs[i] = Group{Gid: groups[i].Gid, Points: r.LocalSkyline(groups[i].Points, tally)}
	})
	return outs, err
}

// RunMerges implements Executor.
func (ex *LocalExec) RunMerges(ctx context.Context, r *Rule, tasks [][]Group, tally *metrics.Tally) ([][]point.Point, error) {
	outs := make([][]point.Point, len(tasks))
	err := ex.run(ctx, len(tasks), func(i int) {
		outs[i] = r.MergeGroups(tasks[i], tally)
	})
	return outs, err
}
