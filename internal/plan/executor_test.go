package plan

import (
	"context"
	"strings"
	"sync/atomic"
	"testing"

	"zskyline/internal/gen"
	"zskyline/internal/point"
)

// A cancelled context must stop task admission: with a single-worker
// pool and a task that cancels the context, tasks queued behind it
// must never be dispatched.
func TestLocalExecStopsAdmissionOnCancel(t *testing.T) {
	ex := NewLocalExec(1)
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	err := ex.run(ctx, 100, func(i int) {
		ran.Add(1)
		if i == 0 {
			cancel()
		}
	})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Task 0 ran and cancelled; admission may already have committed a
	// small number of follow-ups racing the cancel, but nothing close
	// to the full fan-out.
	if n := ran.Load(); n == 0 || n > 10 {
		t.Errorf("%d tasks ran after cancellation, want a handful at most", n)
	}
}

// A panicking task must surface as an error on the calling goroutine,
// not kill the process, and must not wedge the pool.
func TestLocalExecRecoversPanic(t *testing.T) {
	ex := NewLocalExec(4)
	err := ex.run(context.Background(), 8, func(i int) {
		if i == 5 {
			panic("boom")
		}
	})
	if err == nil || !strings.Contains(err.Error(), "task 5 panicked: boom") {
		t.Fatalf("err = %v, want task-5 panic error", err)
	}
	// The pool is reusable after a panic.
	if err := ex.run(context.Background(), 4, func(int) {}); err != nil {
		t.Fatalf("pool wedged after panic: %v", err)
	}
}

// RunSource over a streaming generator must produce the same skyline
// as Run over the materialized dataset (same seed, same spec).
func TestRunSourceMatchesRun(t *testing.T) {
	const n, d, seed = 3000, 4, 17
	spec := validSpec()
	spec.ChunkSize = 700 // exercise multi-block ingest + chunking
	ds := gen.Synthetic(gen.AntiCorrelated, n, d, seed)
	want, _, err := Run(context.Background(), spec, ds, NewLocalExec(4), nil)
	if err != nil {
		t.Fatal(err)
	}
	got, rep, err := RunSource(context.Background(), spec,
		gen.NewSource(gen.AntiCorrelated, n, d, seed), NewLocalExec(4), nil)
	if err != nil {
		t.Fatal(err)
	}
	sameSet(t, got, want, "source-vs-materialized")
	if rep.SkylineSize != len(want) {
		t.Errorf("report skyline = %d, want %d", rep.SkylineSize, len(want))
	}
	// An empty source is an empty result, not an error.
	sky, rep, err := RunSource(context.Background(), validSpec(),
		point.NewSliceSource(3, nil), NewLocalExec(2), nil)
	if err != nil || sky != nil || rep == nil {
		t.Errorf("empty source: %v %v %v", sky, rep, err)
	}
}
