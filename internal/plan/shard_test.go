package plan

import (
	"testing"

	"zskyline/internal/gen"
	"zskyline/internal/point"
	"zskyline/internal/zorder"
)

func TestSplitByOwner(t *testing.T) {
	ds := gen.Synthetic(gen.Independent, 200, 3, 7)
	enc, err := zorder.NewUnitEncoder(3, 8)
	if err != nil {
		t.Fatal(err)
	}
	blk := point.BlockOf(3, ds.Points)
	zc := enc.EncodeBlock(zorder.ZCol{}, blk)
	g := Group{Block: blk, ZCol: zc}

	owner := func(row int) int { return int(zc.At(row)[0] % 3) }
	parts := SplitByOwner(g, owner)
	if len(parts) == 0 || len(parts) > 3 {
		t.Fatalf("%d parts", len(parts))
	}
	total := 0
	seen := map[int]bool{}
	for _, p := range parts {
		if seen[p.Gid] {
			t.Fatalf("owner %d appears twice", p.Gid)
		}
		seen[p.Gid] = true
		if p.ZCol.Len() != p.Block.Len() {
			t.Fatalf("owner %d: column %d rows, block %d", p.Gid, p.ZCol.Len(), p.Block.Len())
		}
		for i := 0; i < p.Block.Len(); i++ {
			// Row i's column entry must be the address of row i, and the
			// row must belong to its group's owner.
			want := enc.Encode(p.Block.Row(i))
			if !zorder.Equal(p.ZCol.At(i), want) {
				t.Fatalf("owner %d row %d: column out of sync with block", p.Gid, i)
			}
			if int(p.ZCol.At(i)[0]%3) != p.Gid {
				t.Fatalf("owner %d row %d routed wrong", p.Gid, i)
			}
		}
		total += p.Block.Len()
	}
	if total != blk.Len() {
		t.Fatalf("split lost rows: %d of %d", total, blk.Len())
	}
}

func TestSplitByOwnerNoColumn(t *testing.T) {
	ds := gen.Synthetic(gen.Correlated, 50, 2, 1)
	g := Group{Block: point.BlockOf(2, ds.Points)}
	parts := SplitByOwner(g, func(row int) int { return row % 2 })
	if len(parts) != 2 {
		t.Fatalf("%d parts", len(parts))
	}
	for _, p := range parts {
		if p.ZCol.Len() != 0 {
			t.Fatal("no-column input grew a column")
		}
	}
	if SplitByOwner(Group{Block: point.Block{Dims: 2}}, nil) != nil {
		t.Fatal("empty group should split to nil")
	}
}
