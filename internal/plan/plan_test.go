package plan

import (
	"bytes"
	"context"
	"encoding/gob"
	"testing"

	"zskyline/internal/gen"
	"zskyline/internal/metrics"
	"zskyline/internal/point"
	"zskyline/internal/sample"
	"zskyline/internal/seq"
)

func validSpec() *Spec {
	return &Spec{
		Strategy:    ZDG,
		Local:       ZS,
		Merge:       MergeZM,
		M:           8,
		Delta:       2,
		SampleRatio: 0.1,
		Bits:        10,
		MapTasks:    4,
	}
}

func TestSpecValidate(t *testing.T) {
	bad := []func(*Spec){
		func(s *Spec) { s.M = 0 },
		func(s *Spec) { s.Delta = 0 },
		func(s *Spec) { s.SampleRatio = 0 },
		func(s *Spec) { s.SampleRatio = 1.5 },
		func(s *Spec) { s.Bits = 0 },
		func(s *Spec) { s.Bits = 99 },
	}
	for i, mutate := range bad {
		s := validSpec()
		mutate(s)
		if err := s.Validate(); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
	if err := validSpec().Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
}

func TestStringers(t *testing.T) {
	for _, s := range []Strategy{Grid, Angle, Random, NaiveZ, ZHG, ZDG, Strategy(42)} {
		if s.String() == "" {
			t.Errorf("strategy %d has empty name", int(s))
		}
	}
	for _, a := range []LocalAlgo{SB, ZS} {
		if a.String() == "" {
			t.Errorf("local algo %d has empty name", int(a))
		}
	}
	for _, m := range []MergeAlgo{MergeZM, MergeZS, MergeSB} {
		if m.String() == "" {
			t.Errorf("merge algo %d has empty name", int(m))
		}
	}
}

func TestSplitNAndChunkBy(t *testing.T) {
	pts := make([]point.Point, 10)
	for i := range pts {
		pts[i] = point.Point{float64(i)}
	}
	check := func(chunks [][]point.Point, label string) {
		t.Helper()
		var total int
		for _, c := range chunks {
			total += len(c)
		}
		if total != len(pts) {
			t.Fatalf("%s: chunks cover %d points, want %d", label, total, len(pts))
		}
	}
	for _, n := range []int{0, 1, 3, 10, 99} {
		check(SplitN(pts, n), "splitN")
	}
	if got := len(SplitN(pts, 3)); got != 3 {
		t.Errorf("SplitN(10,3) = %d chunks", got)
	}
	if got := len(SplitN(pts, 99)); got != 10 {
		t.Errorf("SplitN(10,99) = %d chunks (want one per point)", got)
	}
	for _, size := range []int{0, 1, 4, 10, 99} {
		check(ChunkBy(pts, size), "chunkBy")
	}
	if got := len(ChunkBy(pts, 4)); got != 3 {
		t.Errorf("ChunkBy(10,4) = %d chunks", got)
	}
	if SplitN(nil, 4) != nil {
		t.Error("SplitN(nil) != nil")
	}
}

func TestShuffleDeterministicOrder(t *testing.T) {
	outs := []MapOutput{
		{Groups: []Group{NewGroup(3, 1, []point.Point{{1}}), NewGroup(1, 1, []point.Point{{2}})}, Filtered: 2},
		{Groups: []Group{NewGroup(1, 1, []point.Point{{3}}), NewGroup(0, 1, []point.Point{{4}})}, Filtered: 1},
	}
	groups, filtered := Shuffle(outs)
	if filtered != 3 {
		t.Errorf("filtered = %d, want 3", filtered)
	}
	wantOrder := []int{3, 1, 0}
	if len(groups) != len(wantOrder) {
		t.Fatalf("groups = %d, want %d", len(groups), len(wantOrder))
	}
	for i, gid := range wantOrder {
		if groups[i].Gid != gid {
			t.Errorf("group[%d].Gid = %d, want %d (first-seen order)", i, groups[i].Gid, gid)
		}
	}
	if groups[1].Len() != 2 {
		t.Errorf("group 1 holds %d points, want 2 (concatenated)", groups[1].Len())
	}
}

// learnRule builds a rule from a fresh sample of ds, as Run does.
func learnRule(t *testing.T, spec *Spec, ds *point.Dataset) *Rule {
	t.Helper()
	smp, err := sample.Ratio(ds.Points, spec.SampleRatio, spec.Seed)
	if err != nil {
		t.Fatal(err)
	}
	mins, maxs, err := ds.Bounds()
	if err != nil {
		t.Fatal(err)
	}
	r, err := Learn(spec, ds.Dims, mins, maxs, smp, nil)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestRuleDataRoundTrip broadcasts a rule through gob — the dist wire
// format — and checks the compiled copy routes and merges identically.
func TestRuleDataRoundTrip(t *testing.T) {
	ds := gen.Synthetic(gen.AntiCorrelated, 2000, 4, 5)
	r := learnRule(t, validSpec(), ds)
	rd, err := r.Data()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(rd); err != nil {
		t.Fatal(err)
	}
	var back RuleData
	if err := gob.NewDecoder(&buf).Decode(&back); err != nil {
		t.Fatal(err)
	}
	r2, err := FromData(&back)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Groups() != r.Groups() || r2.Partitions() != r.Partitions() {
		t.Fatalf("shape drift: %d/%d groups, %d/%d partitions",
			r2.Groups(), r.Groups(), r2.Partitions(), r.Partitions())
	}
	for _, p := range ds.Points[:500] {
		g1, ok1 := r.Route(p)
		g2, ok2 := r2.Route(p)
		if g1 != g2 || ok1 != ok2 {
			t.Fatalf("route drift for %v: (%d,%v) vs (%d,%v)", p, g1, ok1, g2, ok2)
		}
	}
	out1 := r.MapChunk(ds.Points, nil)
	out2 := r2.MapChunk(ds.Points, nil)
	if out1.Filtered != out2.Filtered || len(out1.Groups) != len(out2.Groups) {
		t.Fatalf("map drift: %+v vs %+v", out1.Filtered, out2.Filtered)
	}
}

// Baseline rules close over in-memory partitioners; they must refuse
// to serialize rather than broadcast something non-executable.
func TestBaselineRulesDoNotSerialize(t *testing.T) {
	ds := gen.Synthetic(gen.Independent, 500, 3, 9)
	for _, st := range []Strategy{Grid, Angle, Random} {
		spec := validSpec()
		spec.Strategy = st
		r := learnRule(t, spec, ds)
		if _, err := r.Data(); err == nil {
			t.Errorf("%v rule serialized", st)
		}
	}
}

func TestUnknownStrategyRejected(t *testing.T) {
	spec := validSpec()
	spec.Strategy = Strategy(42)
	ds := gen.Synthetic(gen.Independent, 200, 2, 1)
	if _, _, err := Run(context.Background(), spec, ds, NewLocalExec(2), nil); err == nil {
		t.Error("unknown strategy accepted")
	}
}

func TestRunEmptyAndCancelled(t *testing.T) {
	sky, rep, err := Run(context.Background(), validSpec(), nil, NewLocalExec(2), nil)
	if err != nil || sky != nil || rep == nil {
		t.Errorf("empty run: %v %v %v", sky, rep, err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ds := gen.Synthetic(gen.Independent, 1000, 3, 2)
	if _, _, err := Run(ctx, validSpec(), ds, NewLocalExec(2), nil); err == nil {
		t.Error("cancelled context accepted")
	}
}

// The report's counters must be internally consistent and the skyline
// exact, for every merge algorithm.
func TestRunReportAndMergeAlgos(t *testing.T) {
	ds := gen.Synthetic(gen.AntiCorrelated, 3000, 4, 11)
	want := seq.BruteForce(ds.Points)
	for _, merge := range []MergeAlgo{MergeZM, MergeZS, MergeSB} {
		spec := validSpec()
		spec.Merge = merge
		tally := &metrics.Tally{}
		sky, rep, err := Run(context.Background(), spec, ds, NewLocalExec(4), tally)
		if err != nil {
			t.Fatal(err)
		}
		sameSet(t, sky, want, "merge/"+merge.String())
		if rep.SkylineSize != len(sky) || rep.Candidates < len(sky) {
			t.Errorf("%v: report %+v", merge, rep)
		}
		if rep.Groups == 0 || rep.SampleSkySize == 0 || rep.Filtered == 0 {
			t.Errorf("%v: phase-1 fields empty: %+v", merge, rep)
		}
		var perGroup int
		for _, n := range rep.PerGroupCandidates {
			perGroup += n
		}
		if perGroup != rep.Candidates {
			t.Errorf("%v: per-group sum %d != candidates %d", merge, perGroup, rep.Candidates)
		}
		if tally.Snapshot().DominanceTests == 0 {
			t.Errorf("%v: no dominance tests recorded", merge)
		}
	}
}

func sameSet(t *testing.T, got, want []point.Point, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d points, want %d", label, len(got), len(want))
	}
	g := append([]point.Point(nil), got...)
	w := append([]point.Point(nil), want...)
	point.SortLexicographic(g)
	point.SortLexicographic(w)
	for i := range g {
		if !g[i].Equal(w[i]) {
			t.Fatalf("%s: [%d] = %v, want %v", label, i, g[i], w[i])
		}
	}
}
