package plan

import (
	"fmt"

	"zskyline/internal/dominance"
	"zskyline/internal/grouping"
	"zskyline/internal/metrics"
	"zskyline/internal/partition"
	"zskyline/internal/point"
	"zskyline/internal/seq"
	"zskyline/internal/zbtree"
	"zskyline/internal/zorder"
)

// Rule is the learned phase-1 artifact: how to route a point to its
// group (or drop it), how to compute a group's local skyline, and how
// to merge candidate groups. One Rule drives every substrate; the
// Z-order variants additionally serialize to RuleData for broadcast.
type Rule struct {
	local     LocalAlgo
	merge     MergeAlgo
	fanout    int
	filterOff bool

	// prov is the dominance relation every kernel of this rule computes
	// under (never nil; Pareto by default), with its capability flags
	// cached. Learn disables the SZB-tree filter and dominance-based
	// partition pruning when the relation does not transfer Pareto
	// eliminations (ParetoImplies false), and RunSource appends a
	// full-dataset verification pass when the relation is not
	// transitive.
	prov dominance.Provider
	caps dominance.Caps

	// enc quantizes over the data bounds; merge always uses it. localEnc
	// is the phase-2 local-skyline encoder: the same bounds encoder for
	// Z-order strategies, a unit-box encoder for the baselines (which
	// learn no bounds encoder of their own).
	enc      *zorder.Encoder
	localEnc *zorder.Encoder

	// assignFn routes for the non-Z baselines (Grid / Angle / Random).
	assignFn func(p point.Point) (gid int, ok bool)
	// pivots + groupOf route for the Z-order strategies: binary-search
	// the Z-address into a partition, then map partition -> group.
	pivots  []zorder.ZAddr
	groupOf map[int]int
	// szb is the sample-skyline ZB-tree of Algorithm 3; nil when the
	// strategy does not filter.
	szb *zbtree.Tree
	// sampleSky is the broadcastable sample skyline backing szb.
	sampleSky []point.Point

	dims       int
	bits       int
	mins, maxs []float64

	groups  int
	parts   int
	pruned  int
	skySize int
}

// Learn builds the routing rule from the sample — phase 1 (§5.1) for
// all six strategies. mins/maxs are the dataset bounds; dims its width.
func Learn(spec *Spec, dims int, mins, maxs []float64, smp []point.Point, tally *metrics.Tally) (*Rule, error) {
	enc, err := zorder.NewEncoder(dims, spec.Bits, mins, maxs)
	if err != nil {
		return nil, err
	}
	prov, err := spec.Dominance.Provider()
	if err != nil {
		return nil, err
	}
	r := &Rule{
		local:     spec.Local,
		merge:     spec.Merge,
		fanout:    spec.fanout(),
		filterOff: spec.DisableSZBFilter,
		prov:      prov,
		caps:      prov.Caps(),
		enc:       enc,
		localEnc:  enc,
		dims:      dims,
		bits:      spec.Bits,
		mins:      mins,
		maxs:      maxs,
	}
	// The SZB-tree mapper filter eliminates points the Pareto sample
	// skyline dominates; that elimination transfers to the provider's
	// relation only when Pareto dominance implies provider dominance.
	if !r.caps.ParetoImplies {
		r.filterOff = true
	}

	switch spec.Strategy {
	case Grid:
		g, err := partition.NewGrid(smp, spec.M)
		if err != nil {
			return nil, err
		}
		r.assignFn = func(p point.Point) (int, bool) { return g.Assign(p), true }
		r.groups, r.parts = g.N(), g.N()
		return r.withUnitLocalEncoder()
	case Angle:
		a, err := partition.NewAngle(smp, spec.M)
		if err != nil {
			return nil, err
		}
		r.assignFn = func(p point.Point) (int, bool) { return a.Assign(p), true }
		r.groups, r.parts = a.N(), a.N()
		return r.withUnitLocalEncoder()
	case Random:
		rp, err := partition.NewRandom(spec.M)
		if err != nil {
			return nil, err
		}
		r.assignFn = func(p point.Point) (int, bool) { return rp.Assign(p), true }
		r.groups, r.parts = rp.N(), rp.N()
		return r.withUnitLocalEncoder()
	case NaiveZ, ZHG, ZDG:
	default:
		return nil, fmt.Errorf("plan: unknown strategy %v", spec.Strategy)
	}

	// Z-order strategies.
	parts := spec.M
	if spec.Strategy != NaiveZ {
		parts = spec.M * spec.Delta
	}
	zc, err := partition.NewZCurve(enc, smp, parts)
	if err != nil {
		return nil, err
	}
	skyPts := zbtree.ZSearch(enc, spec.fanout(), smp, tally)
	r.skySize = len(skyPts)
	// Naive-Z is the bare §4.1 partitioner: pivots only, no sample
	// skyline broadcast, no grouping. Only the grouped strategies run
	// Algorithm 3's SZB-tree mapper filter.
	if spec.Strategy != NaiveZ {
		r.sampleSky = skyPts
		r.szb = zbtree.BuildFromPoints(enc, spec.fanout(), skyPts, tally)
	}

	var pg *grouping.PGMap
	switch spec.Strategy {
	case NaiveZ:
		pg = grouping.Identity(zc.Infos())
	case ZHG:
		zc = zc.Redistribute(smp, sconsOf(skyPts, spec.M))
		pg, err = grouping.Heuristic(zc.Infos(), spec.M)
	case ZDG:
		zc = zc.Redistribute(smp, sconsOf(skyPts, spec.M))
		if r.caps.ParetoImplies {
			pg, err = grouping.Dominance(enc, zc.Infos(), spec.M)
		} else {
			// Dominance-based grouping prunes partitions whose every
			// point is Pareto-dominated — unsound when the provider
			// keeps some Pareto-dominated points. Degrade to heuristic
			// grouping, which only balances and never prunes.
			pg, err = grouping.Heuristic(zc.Infos(), spec.M)
		}
	}
	if err != nil {
		return nil, err
	}
	r.pivots = zc.Pivots()
	r.groupOf = pg.Assign
	r.groups = pg.Groups
	r.parts = zc.N()
	r.pruned = len(pg.Pruned)
	return r, nil
}

// sconsOf is the redistribute() skyline-per-partition cap of
// Algorithms 1 and 2.
func sconsOf(skyPts []point.Point, m int) int {
	scons := len(skyPts) / m
	if scons < 1 {
		scons = 1
	}
	return scons
}

// withUnitLocalEncoder swaps the local-skyline encoder for a unit-box
// one. The baselines learn no bounds encoder, and exact correctness
// does not depend on bounds (clamping only weakens pruning), so the
// unit box — where generated data lives — is a safe default.
func (r *Rule) withUnitLocalEncoder() (*Rule, error) {
	u, err := zorder.NewUnitEncoder(r.dims, r.bits)
	if err != nil {
		return nil, err
	}
	r.localEnc = u
	return r, nil
}

// NewLocalRule builds a routing-less rule over enc for substrates that
// shard positionally (the shared-memory executor): only LocalSkyline
// and MergeGroups are meaningful on it.
func NewLocalRule(enc *zorder.Encoder, fanout int, local LocalAlgo, merge MergeAlgo) *Rule {
	return NewLocalRuleUnder(nil, enc, fanout, local, merge)
}

// NewLocalRuleUnder is NewLocalRule under a dominance provider (nil
// means Pareto).
func NewLocalRuleUnder(prov dominance.Provider, enc *zorder.Encoder, fanout int, local LocalAlgo, merge MergeAlgo) *Rule {
	if fanout <= 0 {
		fanout = zbtree.DefaultFanout
	}
	if prov == nil {
		prov = dominance.Pareto{}
	}
	return &Rule{local: local, merge: merge, fanout: fanout, prov: prov, caps: prov.Caps(),
		enc: enc, localEnc: enc, dims: enc.Dims()}
}

// Groups returns the number of groups (= phase-2 reducers).
func (r *Rule) Groups() int { return r.groups }

// Partitions returns the partition count before grouping.
func (r *Rule) Partitions() int { return r.parts }

// PrunedPartitions returns how many partitions grouping dropped as
// fully dominated.
func (r *Rule) PrunedPartitions() int { return r.pruned }

// SampleSkySize returns the sample-skyline size (0 for the baselines).
func (r *Rule) SampleSkySize() int { return r.skySize }

// Encoder returns the rule's bounds encoder.
func (r *Rule) Encoder() *zorder.Encoder { return r.enc }

// Provider returns the dominance relation the rule's kernels compute
// under (never nil).
func (r *Rule) Provider() dominance.Provider {
	if r.prov == nil {
		return dominance.Pareto{}
	}
	return r.prov
}

// pareto reports whether the rule runs under the classic relation —
// the zero-overhead fast path every kernel branches on once.
func (r *Rule) pareto() bool { return dominance.IsPareto(r.prov) }

// Route maps a point to its group; ok is false when the point is
// dropped (SZB-tree filtered, or routed to a pruned partition). This
// is the one-shot entry point; per-point loops should hold a Router,
// which reuses its quantization scratch across calls.
func (r *Rule) Route(p point.Point) (gid int, ok bool) {
	if r.assignFn != nil {
		return r.assignFn(p)
	}
	return r.NewRouter().Route(p)
}

// RouteEntry routes an already-encoded ZB-tree entry — for mappers
// that hold the entry anyway (Algorithm 3).
func (r *Rule) RouteEntry(e zbtree.Entry) (gid int, ok bool) {
	if r.szb != nil && !r.filterOff && r.szb.DominatesPoint(e.G, e.P) {
		return 0, false
	}
	gid, ok = r.groupOf[r.partitionOf(e.Z)]
	return gid, ok
}

// Router is per-task routing state: one grid/Z-address scratch pair
// reused across every point the task routes, so a record-oriented
// mapper pays zero allocations per point. A Rule is shared and
// immutable after Learn, so the scratch cannot live on it — each
// goroutine takes its own Router.
type Router struct {
	r *Rule
	g []uint32
	z zorder.ZAddr
}

// NewRouter builds a Router over r.
func (r *Rule) NewRouter() *Router {
	rt := &Router{r: r}
	if r.assignFn == nil {
		rt.g = make([]uint32, r.enc.Dims())
		rt.z = make(zorder.ZAddr, r.enc.Words())
	}
	return rt
}

// Route maps a point to its group without allocating; ok is false when
// the point is dropped. After a Z-routed accept, Z returns the
// encoded address until the next call.
func (rt *Router) Route(p point.Point) (gid int, ok bool) {
	r := rt.r
	if r.assignFn != nil {
		return r.assignFn(p)
	}
	r.enc.GridInto(rt.g, p)
	if r.szb != nil && !r.filterOff && r.szb.DominatesPoint(rt.g, p) {
		return 0, false
	}
	r.enc.EncodeGridInto(rt.z, rt.g)
	gid, ok = r.groupOf[r.partitionOf(rt.z)]
	return gid, ok
}

// Z returns the Z-address of the last point Route accepted on the
// Z-order path (a view of the router's scratch — copy to keep it).
func (rt *Router) Z() zorder.ZAddr { return rt.z }

// partitionOf binary-searches the Z-address into its partition
// (Algorithm 3's searchPT step).
func (r *Rule) partitionOf(a zorder.ZAddr) int {
	lo, hi := 0, len(r.pivots)
	for lo < hi {
		mid := (lo + hi) / 2
		if zorder.Compare(a, r.pivots[mid]) < 0 {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// LocalSkyline computes one group's skyline with the configured local
// algorithm (phase 2's combine/reduce) — the slice adapter over the
// block-native kernels.
func (r *Rule) LocalSkyline(pts []point.Point, tally *metrics.Tally) []point.Point {
	dims := r.dims
	if dims == 0 && len(pts) > 0 {
		dims = len(pts[0])
	}
	g := r.localSkylineGroup(Group{Block: point.BlockOf(dims, pts)}, tally, false)
	return g.Block.Points()
}

// LocalSkylineBlock computes one group's skyline over a block. The
// survivors are compacted into a freshly owned block, so the result
// never pins the (much larger) input block's backing array.
func (r *Rule) LocalSkylineBlock(b point.Block, tally *metrics.Tally) point.Block {
	return r.localSkylineGroup(Group{Block: b}, tally, false).Block
}

// LocalSkylineGroup is phase 2's reduce on the encode-once path: it
// reuses the group's Z-address column when its shape matches the
// rule's bounds encoder, and returns candidates carrying their own
// column (unless the merge phase is SB, which has no use for one).
func (r *Rule) LocalSkylineGroup(g Group, tally *metrics.Tally) Group {
	return r.localSkylineGroup(g, tally, true)
}

// localSkylineGroup runs the configured local kernel over g. carryZ
// selects whether the result should carry a bounds-encoder column for
// the merge phase; slice/block adapters skip that work.
func (r *Rule) localSkylineGroup(g Group, tally *metrics.Tally, carryZ bool) Group {
	out := Group{Gid: g.Gid, Block: point.Block{Dims: g.Block.Dims}}
	n := g.Block.Len()
	if n == 0 {
		return out
	}
	if !r.pareto() {
		// Non-Pareto relations run the capability-gated kernels; the
		// encode-once column is not carried (the provider merge path
		// re-derives what it needs). For non-transitive relations the
		// result is a candidate superset that the pipeline's final
		// verification pass closes.
		if r.local == ZS {
			out.Block = zbtree.ZSearchBlockUnder(r.prov, r.localEnc, r.fanout, g.Block, tally)
		} else {
			out.Block = dominance.SkylineBlock(r.prov, g.Block, tally)
		}
		return out
	}
	carryZ = carryZ && r.merge != MergeSB
	if r.local == ZS {
		if g.ZCol.Len() == n && g.ZCol.Words == r.enc.Words() {
			// Encode-once: the column is bounds-encoded, so the kernel must
			// run under the bounds encoder to keep the store consistent. For
			// every rule that produces columns localEnc == enc anyway.
			out.Block, out.ZCol = zbtree.ZSearchGroup(r.enc, r.fanout, g.Block, g.ZCol, tally)
		} else {
			out.Block, out.ZCol = zbtree.ZSearchGroup(r.localEnc, r.fanout, g.Block, zorder.ZCol{}, tally)
			if r.localEnc != r.enc {
				// Wrong provenance for the merge phase: the column was built
				// by the unit-box local encoder.
				out.ZCol = zorder.ZCol{}
			}
		}
		if !carryZ {
			out.ZCol = zorder.ZCol{}
		} else if out.ZCol.Len() != out.Block.Len() {
			out.ZCol = r.enc.EncodeBlock(zorder.ZCol{}, out.Block)
		}
		return out
	}
	out.Block = seq.SBBlock(g.Block, tally)
	if carryZ {
		out.ZCol = r.enc.EncodeBlock(zorder.ZCol{}, out.Block)
	}
	return out
}

// MapChunk is phase 2's map+combine over one chunk of individual
// points: filter against the SZB-tree, route to groups (first-seen
// order), and emit the chunk-local skyline per group. This is the
// pointer-per-point path; MapBlock is the flat equivalent bulk movers
// use.
func (r *Rule) MapChunk(pts []point.Point, tally *metrics.Tally) MapOutput {
	byGroup := map[int][]point.Point{}
	var order []int
	var out MapOutput
	for _, p := range pts {
		gid, ok := r.Route(p)
		if !ok {
			out.Filtered++
			continue
		}
		if _, seen := byGroup[gid]; !seen {
			order = append(order, gid)
		}
		byGroup[gid] = append(byGroup[gid], p)
	}
	tally.AddPointsPruned(out.Filtered)
	out.Groups = make([]Group, len(order))
	for i, gid := range order {
		out.Groups[i] = NewGroup(gid, r.dims, r.LocalSkyline(byGroup[gid], tally))
	}
	return out
}

// MapBlock is MapChunk over a contiguous block — the phase-2 hot path.
// Routing reuses one grid/Z-address scratch pair across all rows and
// routed points accumulate in per-group arenas, so the per-point cost
// is zero allocations (the old path paid an encoded ZB-tree entry per
// point). On the Z-order path the address computed for routing is
// appended to the group's Z-address column, so it is encoded exactly
// once per query: combine, shuffle, reduce, and merge all reuse it.
func (r *Rule) MapBlock(b point.Block, tally *metrics.Tally) MapOutput {
	builders := map[int]*point.BlockBuilder{}
	var zcols map[int]*zorder.ZCol
	var order []int
	var out MapOutput

	var g []uint32
	var z zorder.ZAddr
	zRoute := r.assignFn == nil
	if zRoute {
		g = make([]uint32, r.enc.Dims())
		z = make(zorder.ZAddr, r.enc.Words())
		zcols = map[int]*zorder.ZCol{}
	}
	rows := b.Len()
	for i := 0; i < rows; i++ {
		p := b.Row(i)
		var gid int
		var ok bool
		if !zRoute {
			gid, ok = r.assignFn(p)
		} else {
			g = r.enc.GridInto(g, p)
			if r.szb != nil && !r.filterOff && r.szb.DominatesPoint(g, p) {
				ok = false
			} else {
				z = r.enc.EncodeGridInto(z, g)
				gid, ok = r.groupOf[r.partitionOf(z)]
			}
		}
		if !ok {
			out.Filtered++
			continue
		}
		bb := builders[gid]
		if bb == nil {
			bb = point.NewBlockBuilder(b.Dims, 0)
			builders[gid] = bb
			if zRoute {
				zcols[gid] = &zorder.ZCol{Words: r.enc.Words()}
			}
			order = append(order, gid)
		}
		bb.Append(p)
		if zRoute {
			zcols[gid].AppendAddr(z)
		}
	}
	tally.AddPointsPruned(out.Filtered)
	out.Groups = make([]Group, len(order))
	for i, gid := range order {
		in := Group{Gid: gid, Block: builders[gid].Build()}
		if zRoute {
			in.ZCol = *zcols[gid]
		}
		out.Groups[i] = r.LocalSkylineGroup(in, tally)
	}
	return out
}

// MergeGroups is one phase-3 merge task over candidate groups, in the
// given order: Z-merge one ZB-tree per group (Algorithm 4), or the
// ZS / SB recompute baselines. Slice adapter over MergeGroupsZ.
func (r *Rule) MergeGroups(groups []Group, tally *metrics.Tally) []point.Point {
	return r.MergeGroupsZ(groups, tally).Block.Points()
}

// MergeGroupsBlock is MergeGroups with the merged skyline compacted
// into an owned block.
func (r *Rule) MergeGroupsBlock(groups []Group, tally *metrics.Tally) point.Block {
	return r.MergeGroupsZ(groups, tally).Block
}

// MergeGroupsZ is one phase-3 merge task on the encode-once path. For
// the Z-order merges it concatenates the groups' blocks and Z-address
// columns into one shared columnar store (encoding only rows whose
// groups arrived without a column), builds index-based ZB-trees over
// row ranges of that store, and Z-merges (or Z-searches) without
// materializing a single per-point entry. The result carries its own
// column so tree-merge rounds keep reusing addresses.
func (r *Rule) MergeGroupsZ(groups []Group, tally *metrics.Tally) Group {
	out := Group{Block: point.Block{Dims: r.dims}}
	total := 0
	for _, g := range groups {
		total += g.Len()
	}
	if total == 0 {
		return out
	}
	if !r.pareto() {
		// Provider fallback: concatenate the candidate groups and
		// recompute under the capability-gated kernels. Z-merge's
		// branch stashing and the columnar block trees assume Pareto
		// region semantics; recomputation over the union is exact for
		// transitive providers and yields the candidate superset the
		// final verification pass expects otherwise.
		bb := point.NewBlockBuilder(r.dims, total)
		for _, g := range groups {
			bb.AppendBlock(g.Block)
		}
		if r.merge == MergeSB {
			out.Block = dominance.SkylineBlock(r.prov, bb.Build(), tally)
		} else {
			out.Block = zbtree.ZSearchBlockUnder(r.prov, r.enc, r.fanout, bb.Build(), tally)
		}
		return out
	}
	if r.merge == MergeSB {
		bb := point.NewBlockBuilder(r.dims, total)
		for _, g := range groups {
			bb.AppendBlock(g.Block)
		}
		out.Block = seq.SBBlock(bb.Build(), tally)
		return out
	}
	// Shared store over all candidates, reusing columns where present.
	w := r.enc.Words()
	bb := point.NewBlockBuilder(r.dims, total)
	zc := zorder.ZCol{Words: w, Data: make([]uint64, 0, total*w)}
	ranges := make([][2]int32, 0, len(groups)) // per-group [lo,hi) store rows
	for _, g := range groups {
		lo := int32(bb.Len())
		bb.AppendBlock(g.Block)
		if g.ZCol.Len() == g.Block.Len() && g.ZCol.Words == w {
			zc.AppendCol(g.ZCol)
		} else {
			zc.AppendCol(r.enc.EncodeBlock(zorder.ZCol{}, g.Block))
		}
		ranges = append(ranges, [2]int32{lo, int32(bb.Len())})
	}
	st := zbtree.NewStoreWithZCol(r.enc, bb.Build(), zc)
	var rows []int32
	if r.merge == MergeZS {
		rows = zbtree.BuildStore(st, r.fanout, tally).SkylineRows()
	} else { // MergeZM: fold Z-merge over per-group trees (Algorithm 4)
		acc := zbtree.NewBlockTree(st, r.fanout, tally)
		for _, rg := range ranges {
			seg := make([]int32, 0, rg[1]-rg[0])
			for i := rg[0]; i < rg[1]; i++ {
				seg = append(seg, i)
			}
			acc = zbtree.MergeBlock(acc, zbtree.BuildRows(st, r.fanout, seg, tally))
		}
		rows = acc.Rows()
	}
	out.Block, out.ZCol = st.CompactRows(rows)
	return out
}

// RuleData is the gob-serializable form of a Z-order rule — what a
// coordinator broadcasts to remote workers (the paper's
// distributed-cache step). The sample skyline ships as one flat block
// frame rather than a slice of per-point allocations.
type RuleData struct {
	Dims, Bits    int
	Mins, Maxs    []float64
	Pivots        [][]uint64
	GroupOf       map[int]int
	Groups        int
	SampleSkyline point.Block
	Fanout        int
	Local         LocalAlgo
	Merge         MergeAlgo
	DisableFilter bool
	// Dominance is the wire descriptor of the rule's dominance
	// provider; the zero value means classic Pareto, so payloads from
	// peers that predate providers keep their meaning.
	Dominance dominance.Descriptor
}

// Data serializes the rule. Only Z-order rules serialize: the
// baselines close over in-memory partitioners and are in-process only.
func (r *Rule) Data() (*RuleData, error) {
	if r.assignFn != nil || r.groupOf == nil {
		return nil, fmt.Errorf("plan: only Z-order rules serialize for broadcast")
	}
	rd := &RuleData{
		Dims:          r.dims,
		Bits:          r.bits,
		Mins:          r.mins,
		Maxs:          r.maxs,
		GroupOf:       r.groupOf,
		Groups:        r.groups,
		SampleSkyline: point.BlockOf(r.dims, r.sampleSky),
		Fanout:        r.fanout,
		Local:         r.local,
		Merge:         r.merge,
		DisableFilter: r.filterOff,
		Dominance:     r.Provider().Descriptor(),
	}
	rd.Pivots = make([][]uint64, len(r.pivots))
	for i, p := range r.pivots {
		rd.Pivots[i] = p.Clone()
	}
	return rd, nil
}

// FromData compiles a broadcast rule back into executable form.
func FromData(rd *RuleData) (*Rule, error) {
	enc, err := zorder.NewEncoder(rd.Dims, rd.Bits, rd.Mins, rd.Maxs)
	if err != nil {
		return nil, err
	}
	prov, err := rd.Dominance.Provider()
	if err != nil {
		return nil, err
	}
	skyPts := rd.SampleSkyline.Points()
	r := &Rule{
		local:     rd.Local,
		merge:     rd.Merge,
		fanout:    rd.Fanout,
		filterOff: rd.DisableFilter,
		prov:      prov,
		caps:      prov.Caps(),
		enc:       enc,
		localEnc:  enc,
		groupOf:   rd.GroupOf,
		sampleSky: skyPts,
		dims:      rd.Dims,
		bits:      rd.Bits,
		mins:      rd.Mins,
		maxs:      rd.Maxs,
		groups:    rd.Groups,
		parts:     len(rd.Pivots) + 1,
		skySize:   len(skyPts),
	}
	if r.fanout <= 0 {
		r.fanout = zbtree.DefaultFanout
	}
	for _, p := range rd.Pivots {
		if len(p) != enc.Words() {
			return nil, fmt.Errorf("plan: pivot has %d words, want %d", len(p), enc.Words())
		}
		r.pivots = append(r.pivots, zorder.ZAddr(p))
	}
	if len(skyPts) > 0 {
		r.szb = zbtree.BuildFromPoints(enc, r.fanout, skyPts, nil)
	}
	return r, nil
}
